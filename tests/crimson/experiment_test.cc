// Tests for the typed, handle-based Experiment API: spec round-trips,
// the algorithm registry, parallel-vs-legacy-sequential byte identity,
// persistence + exact replay on a reopened database, evaluation-state
// caching, and replay of "benchmark"/"experiment" history entries.

#include "crimson/experiment_spec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace crimson {
namespace {

void RemoveFile(const std::string& path) { std::remove(path.c_str()); }

/// Deterministic gold standard shared by the tests: a small Yule tree
/// plus JC69 sequences for every leaf.
struct Gold {
  PhyloTree tree;
  std::map<std::string, std::string> sequences;
};

const Gold& SharedGold() {
  static const Gold* gold = [] {
    auto* g = new Gold();
    Rng rng(0xE11);
    YuleOptions opts;
    opts.n_leaves = 48;
    g->tree = std::move(SimulateYule(opts, &rng)).value();
    SeqEvolveOptions seq_opts;
    seq_opts.seq_length = 160;
    auto evolver = SequenceEvolver::Create(seq_opts);
    g->sequences = std::move(evolver->EvolveLeaves(g->tree, &rng)).value();
    return g;
  }();
  return *gold;
}

std::unique_ptr<Crimson> OpenSessionWithGold(uint64_t seed, size_t workers) {
  CrimsonOptions opts;
  opts.seed = seed;
  opts.batch_workers = workers;
  auto session = std::move(Crimson::Open(opts)).value();
  EXPECT_TRUE(session->LoadTree("gold", SharedGold().tree).ok());
  EXPECT_TRUE(
      session->AppendSpeciesData("gold", SharedGold().sequences).ok());
  return session;
}

ExperimentSpec GridSpec() {
  ExperimentSpec spec;
  spec.algorithms = {"nj", "upgma"};
  SelectionSpec uniform;
  uniform.kind = SelectionSpec::Kind::kUniform;
  uniform.k = 8;
  SelectionSpec timed;
  timed.kind = SelectionSpec::Kind::kWithRespectToTime;
  timed.k = 6;
  timed.time = 0.5;
  spec.selections = {uniform, timed};
  spec.replicates = 2;
  spec.compute_triplets = true;
  return spec;
}

/// Everything about a run except wall-clock timings.
void ExpectRunsEqual(const BenchmarkRun& a, const BenchmarkRun& b,
                     const std::string& context) {
  EXPECT_EQ(a.algorithm, b.algorithm) << context;
  EXPECT_EQ(a.sample_size, b.sample_size) << context;
  EXPECT_EQ(a.rf.distance, b.rf.distance) << context;
  EXPECT_EQ(a.rf.splits_a, b.rf.splits_a) << context;
  EXPECT_EQ(a.rf.splits_b, b.rf.splits_b) << context;
  EXPECT_EQ(a.rf.normalized, b.rf.normalized) << context;
  EXPECT_EQ(a.triplets.total, b.triplets.total) << context;
  EXPECT_EQ(a.triplets.differing, b.triplets.differing) << context;
  EXPECT_EQ(WriteNewick(a.reference), WriteNewick(b.reference)) << context;
  EXPECT_EQ(WriteNewick(a.reconstructed), WriteNewick(b.reconstructed))
      << context;
}

// -- spec (de)serialization -------------------------------------------------

TEST(ExperimentSpecTest, EncodeDecodeRoundTrip) {
  ExperimentSpec spec;
  spec.algorithms = {"nj", "upgma", "my_algo"};
  SelectionSpec uniform;
  uniform.kind = SelectionSpec::Kind::kUniform;
  uniform.k = 32;
  SelectionSpec timed;
  timed.kind = SelectionSpec::Kind::kWithRespectToTime;
  timed.k = 16;
  timed.time = 0.125;
  SelectionSpec list;
  list.kind = SelectionSpec::Kind::kUserList;
  list.species = {"Syn", "Lla", "Bsu"};
  spec.selections = {uniform, timed, list};
  spec.replicates = 7;
  spec.compute_triplets = false;

  auto decoded = DecodeExperimentSpec(EncodeExperimentSpec(spec));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->algorithms, spec.algorithms);
  EXPECT_EQ(decoded->replicates, spec.replicates);
  EXPECT_EQ(decoded->compute_triplets, spec.compute_triplets);
  ASSERT_EQ(decoded->selections.size(), 3u);
  EXPECT_EQ(decoded->selections[0].kind, SelectionSpec::Kind::kUniform);
  EXPECT_EQ(decoded->selections[0].k, 32u);
  EXPECT_EQ(decoded->selections[1].kind,
            SelectionSpec::Kind::kWithRespectToTime);
  EXPECT_EQ(decoded->selections[1].k, 16u);
  EXPECT_EQ(decoded->selections[1].time, 0.125);
  EXPECT_EQ(decoded->selections[2].kind, SelectionSpec::Kind::kUserList);
  EXPECT_EQ(decoded->selections[2].species, list.species);
}

TEST(ExperimentSpecTest, DecodeRejectsMalformedSpecs) {
  EXPECT_FALSE(DecodeExperimentSpec("").ok());
  EXPECT_FALSE(DecodeExperimentSpec("algs=nj").ok());          // no sels
  EXPECT_FALSE(DecodeExperimentSpec("sels=u:8").ok());         // no algs
  EXPECT_FALSE(DecodeExperimentSpec("algs=nj;sels=x:8").ok()); // bad kind
  EXPECT_FALSE(DecodeExperimentSpec("algs=nj;sels=t:8").ok()); // no time
  EXPECT_FALSE(DecodeExperimentSpec("algs=nj;reps=0;sels=u:8").ok());
}

TEST(ExperimentSpecTest, ValidateRejectsEmptyAndUnencodable) {
  ExperimentSpec empty;
  EXPECT_TRUE(ValidateExperimentSpec(empty).IsInvalidArgument());
  ExperimentSpec bad_name = GridSpec();
  bad_name.algorithms = {"a;b"};
  EXPECT_TRUE(ValidateExperimentSpec(bad_name).IsInvalidArgument());
  // '&' would corrupt the k=v&k=v history params the spec embeds in.
  ExperimentSpec amp_name = GridSpec();
  amp_name.algorithms = {"a&b"};
  EXPECT_TRUE(ValidateExperimentSpec(amp_name).IsInvalidArgument());
  ExperimentSpec bad_species = GridSpec();
  SelectionSpec list;
  list.kind = SelectionSpec::Kind::kUserList;
  list.species = {"has|pipe"};
  bad_species.selections = {list};
  EXPECT_TRUE(ValidateExperimentSpec(bad_species).IsInvalidArgument());
}

TEST(ExperimentSpecTest, LegacyBenchmarkParamsDecode) {
  // A pre-Experiment-API "benchmark" history row maps onto a
  // 1-replicate uniform spec.
  auto decoded =
      DecodeExperimentParams("tree=gold&algorithm=neighbor_joining&k=16");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->tree_name, "gold");
  EXPECT_FALSE(decoded->experiment_id.has_value());
  ASSERT_EQ(decoded->spec.algorithms.size(), 1u);
  EXPECT_EQ(decoded->spec.algorithms[0], "neighbor_joining");
  ASSERT_EQ(decoded->spec.selections.size(), 1u);
  EXPECT_EQ(decoded->spec.selections[0].kind, SelectionSpec::Kind::kUniform);
  EXPECT_EQ(decoded->spec.selections[0].k, 16u);
  EXPECT_EQ(decoded->spec.replicates, 1u);
}

// -- the algorithm registry -------------------------------------------------

TEST(AlgorithmRegistryTest, BuiltinsArePreRegistered) {
  auto& registry = AlgorithmRegistry::Global();
  EXPECT_TRUE(registry.Contains("nj"));
  EXPECT_TRUE(registry.Contains("neighbor_joining"));
  EXPECT_TRUE(registry.Contains("upgma"));
  auto nj = registry.Create("nj");
  ASSERT_TRUE(nj.ok());
  EXPECT_EQ((*nj)->name(), "neighbor_joining");
  EXPECT_TRUE(registry.Create("ghost_algorithm").status().IsNotFound());
}

TEST(AlgorithmRegistryTest, UserFactoriesRegisterOnce) {
  auto& registry = AlgorithmRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("registry_test_nj",
                            [] { return MakeNjAlgorithm(); })
                  .ok());
  EXPECT_TRUE(registry
                  .Register("registry_test_nj",
                            [] { return MakeNjAlgorithm(); })
                  .IsAlreadyExists());
  EXPECT_TRUE(
      registry.Register("nj", [] { return MakeNjAlgorithm(); })
          .IsAlreadyExists());
  auto created = registry.Create("registry_test_nj");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ((*created)->name(), "neighbor_joining");
}

// -- RunExperiment ----------------------------------------------------------

TEST(ExperimentTest, ParallelRunMatchesLegacySequentialBenchmarkLoop) {
  // Session A runs the whole grid through RunExperiment on 4 workers;
  // session B (same seed, fresh tickets) walks the same grid through
  // the sequential legacy Benchmark wrapper. Every run must be
  // byte-identical, including the sampled projections and
  // reconstructed topologies.
  const ExperimentSpec spec = GridSpec();
  auto a = OpenSessionWithGold(/*seed=*/77, /*workers=*/4);
  auto ref_a = a->OpenTree("gold");
  ASSERT_TRUE(ref_a.ok());
  auto report = a->RunExperiment(*ref_a, spec);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->runs.size(), spec.job_count());
  EXPECT_GT(report->experiment_id, 0);

  auto b = OpenSessionWithGold(/*seed=*/77, /*workers=*/4);
  auto nj = MakeNjAlgorithm();
  auto upgma = MakeUpgmaAlgorithm();
  const ReconstructionAlgorithm* instances[] = {nj.get(), upgma.get()};
  size_t job = 0;
  for (const ReconstructionAlgorithm* algorithm : instances) {
    for (const SelectionSpec& selection : spec.selections) {
      for (size_t rep = 0; rep < spec.replicates; ++rep, ++job) {
        auto run = b->Benchmark("gold", *algorithm, selection,
                                spec.compute_triplets);
        ASSERT_TRUE(run.ok()) << "job " << job << ": " << run.status();
        ExpectRunsEqual(report->runs[job], *run,
                        "job " + std::to_string(job));
      }
    }
  }

  // The aggregates cover every cell of the grid.
  ASSERT_EQ(report->cells.size(),
            spec.algorithms.size() * spec.selections.size());
  for (const ExperimentCell& cell : report->cells) {
    EXPECT_EQ(cell.replicates, spec.replicates);
    EXPECT_GE(cell.max_rf_normalized, cell.min_rf_normalized);
  }
}

TEST(ExperimentTest, WorkerCountDoesNotChangeResults) {
  const ExperimentSpec spec = GridSpec();
  auto one = OpenSessionWithGold(/*seed=*/5, /*workers=*/1);
  auto many = OpenSessionWithGold(/*seed=*/5, /*workers=*/8);
  auto ref_one = one->OpenTree("gold");
  auto ref_many = many->OpenTree("gold");
  ASSERT_TRUE(ref_one.ok());
  ASSERT_TRUE(ref_many.ok());
  auto r1 = one->RunExperiment(*ref_one, spec);
  auto r8 = many->RunExperiment(*ref_many, spec);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r8.ok()) << r8.status();
  ASSERT_EQ(r1->runs.size(), r8->runs.size());
  for (size_t i = 0; i < r1->runs.size(); ++i) {
    ExpectRunsEqual(r1->runs[i], r8->runs[i], "job " + std::to_string(i));
  }
}

TEST(ExperimentTest, RejectsBadSpecsAndUnknownAlgorithms) {
  auto session = OpenSessionWithGold(/*seed=*/3, /*workers=*/2);
  auto ref = session->OpenTree("gold");
  ASSERT_TRUE(ref.ok());
  ExperimentSpec empty;
  EXPECT_TRUE(
      session->RunExperiment(*ref, empty).status().IsInvalidArgument());
  ExperimentSpec unknown = GridSpec();
  unknown.algorithms = {"ghost_algorithm"};
  EXPECT_TRUE(session->RunExperiment(*ref, unknown).status().IsNotFound());
  EXPECT_TRUE(
      session->RunExperiment(TreeRef(), GridSpec()).status()
          .IsInvalidArgument());
}

TEST(ExperimentTest, PersistsAndReplaysOnReopenedDatabase) {
  std::string path = testing::TempDir() + "/crimson_experiment.db";
  RemoveFile(path);
  const ExperimentSpec spec = GridSpec();
  ExperimentReport original;
  {
    CrimsonOptions opts;
    opts.db_path = path;
    opts.seed = 11;
    auto session = std::move(Crimson::Open(opts)).value();
    ASSERT_TRUE(session->LoadTree("gold", SharedGold().tree).ok());
    ASSERT_TRUE(
        session->AppendSpeciesData("gold", SharedGold().sequences).ok());
    auto ref = session->OpenTree("gold");
    ASSERT_TRUE(ref.ok());
    auto report = session->RunExperiment(*ref, spec);
    ASSERT_TRUE(report.ok()) << report.status();
    original = std::move(*report);
    ASSERT_TRUE(session->Flush().ok());
  }
  {
    // Different session seed: the replay must use the experiment's
    // stored RNG provenance, not the session's.
    CrimsonOptions opts;
    opts.db_path = path;
    opts.seed = 999;
    auto session = std::move(Crimson::Open(opts)).value();

    auto listed = session->ListExperiments();
    ASSERT_TRUE(listed.ok());
    ASSERT_EQ(listed->size(), 1u);
    EXPECT_EQ((*listed)[0].experiment_id, original.experiment_id);
    EXPECT_EQ((*listed)[0].tree_name, "gold");
    EXPECT_EQ((*listed)[0].spec, EncodeExperimentSpec(spec));

    auto replay = session->RerunExperiment(original.experiment_id);
    ASSERT_TRUE(replay.ok()) << replay.status();
    EXPECT_EQ(replay->experiment_id, original.experiment_id);
    ASSERT_EQ(replay->runs.size(), original.runs.size());
    for (size_t i = 0; i < original.runs.size(); ++i) {
      ExpectRunsEqual(original.runs[i], replay->runs[i],
                      "job " + std::to_string(i));
    }

    // The persisted run rows carry the same scores the report did.
    auto repo = ExperimentRepository::Open(session->database());
    ASSERT_TRUE(repo.ok());
    auto rows = (*repo)->RunsFor(original.experiment_id);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), original.runs.size());
    for (size_t i = 0; i < rows->size(); ++i) {
      const auto& row = (*rows)[i];
      const BenchmarkRun& run = original.runs[i];
      EXPECT_EQ(row.ordinal, static_cast<int64_t>(i));
      EXPECT_EQ(row.algorithm, run.algorithm);
      EXPECT_EQ(row.sample_size, static_cast<int64_t>(run.sample_size));
      EXPECT_EQ(row.rf_distance, static_cast<int64_t>(run.rf.distance));
      EXPECT_EQ(row.rf_normalized, run.rf.normalized);
      EXPECT_EQ(row.triplet_total,
                static_cast<int64_t>(run.triplets.total));
      EXPECT_EQ(row.triplet_differing,
                static_cast<int64_t>(run.triplets.differing));
    }
    auto cells = (*repo)->CellsFor(original.experiment_id);
    ASSERT_TRUE(cells.ok());
    ASSERT_EQ(cells->size(), original.cells.size());
    for (size_t i = 0; i < cells->size(); ++i) {
      EXPECT_EQ((*cells)[i].algorithm, original.cells[i].algorithm);
      EXPECT_EQ((*cells)[i].mean_rf_normalized,
                original.cells[i].mean_rf_normalized);
    }
  }
  RemoveFile(path);
}

TEST(ExperimentTest, EvalStateIsInvalidatedByAppendSpeciesData) {
  CrimsonOptions opts;
  opts.seed = 21;
  auto session = std::move(Crimson::Open(opts)).value();
  const Gold& gold = SharedGold();
  ASSERT_TRUE(session->LoadTree("gold", gold.tree).ok());
  auto ref = session->OpenTree("gold");
  ASSERT_TRUE(ref.ok());

  // No species data yet: the experiment cannot run (and the failure
  // must not be cached).
  ExperimentSpec spec = GridSpec();
  EXPECT_TRUE(
      session->RunExperiment(*ref, spec).status().IsFailedPrecondition());

  // Load half the sequences; a user-list selection over a species from
  // the missing half fails inside evaluation.
  std::map<std::string, std::string> first_half, second_half;
  size_t i = 0;
  for (const auto& [species, seq] : gold.sequences) {
    (i++ % 2 == 0 ? first_half : second_half)[species] = seq;
  }
  ASSERT_TRUE(session->AppendSpeciesData("gold", first_half).ok());
  SelectionSpec missing;
  missing.kind = SelectionSpec::Kind::kUserList;
  auto it = second_half.begin();
  missing.species = {it->first, std::next(it)->first,
                     std::next(it, 2)->first};
  ExperimentSpec missing_spec;
  missing_spec.algorithms = {"nj"};
  missing_spec.selections = {missing};
  EXPECT_TRUE(
      session->RunExperiment(*ref, missing_spec).status().IsNotFound());

  // Appending the other half must invalidate the cached sequence map:
  // the same spec now succeeds.
  ASSERT_TRUE(session->AppendSpeciesData("gold", second_half).ok());
  auto rerun = session->RunExperiment(*ref, missing_spec);
  EXPECT_TRUE(rerun.ok()) << rerun.status();
}

// -- history replay ---------------------------------------------------------

TEST(ExperimentTest, HistoryEntriesReplayThroughTheExperimentPath) {
  auto session = OpenSessionWithGold(/*seed=*/31, /*workers=*/4);
  auto ref = session->OpenTree("gold");
  ASSERT_TRUE(ref.ok());

  // An "experiment" entry replays exactly (stored seed + tickets).
  auto report = session->RunExperiment(*ref, GridSpec());
  ASSERT_TRUE(report.ok());
  auto history = session->QueryHistory(1);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 1u);
  EXPECT_EQ((*history)[0].kind, "experiment");
  auto replayed = session->RerunQuery((*history)[0].query_id);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(*replayed, RenderExperimentReport(*report));

  // A "benchmark" entry (the legacy wrapper) re-runs as a fresh
  // 1-replicate experiment through the registry.
  auto nj = MakeNjAlgorithm();
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 6;
  ASSERT_TRUE(session->Benchmark("gold", *nj, sel, false).ok());
  history = session->QueryHistory(1);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ((*history)[0].kind, "benchmark");
  auto bench_replay = session->RerunQuery((*history)[0].query_id);
  ASSERT_TRUE(bench_replay.ok()) << bench_replay.status();
  EXPECT_NE(bench_replay->find("neighbor_joining"), std::string::npos);
}

}  // namespace
}  // namespace crimson
