#include "crimson/data_loader.h"

#include <gtest/gtest.h>

#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

constexpr char kNexusWithData[] = R"(#NEXUS
BEGIN TAXA;
  TAXLABELS A B C;
END;
BEGIN DATA;
  MATRIX
    A ACGT
    B ACGA
    C TTTT
  ;
END;
BEGIN TREES;
  TREE gold = ((A:1,B:1):1,C:2);
END;
)";

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto trees = TreeRepository::Open(db_.get());
    ASSERT_TRUE(trees.ok());
    trees_ = std::move(trees).value();
    auto species = SpeciesRepository::Open(db_.get());
    ASSERT_TRUE(species.ok());
    species_ = std::move(species).value();
    loader_ = std::make_unique<DataLoader>(trees_.get(), species_.get(), 4);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TreeRepository> trees_;
  std::unique_ptr<SpeciesRepository> species_;
  std::unique_ptr<DataLoader> loader_;
};

TEST_F(LoaderTest, LoadNewickStructure) {
  auto report = loader_->LoadNewick("fig1", "((Bha:1.5,(Lla:1,Spy:1):0.5):0.75,Syn:2.5);");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->nodes_loaded, 7u);
  EXPECT_EQ(report->species_loaded, 0u);
  auto info = trees_->GetTreeInfo("fig1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->n_leaves, 4);
}

TEST_F(LoaderTest, NewickParseErrorsSurface) {
  auto report = loader_->LoadNewick("bad", "((A,B);");
  EXPECT_TRUE(report.status().IsInvalidArgument());
  EXPECT_TRUE(trees_->GetTreeInfo("bad").status().IsNotFound());
}

TEST_F(LoaderTest, NewickCannotAppendSpecies) {
  EXPECT_TRUE(loader_
                  ->LoadNewick("t", "(A,B);",
                               LoadMode::kAppendSpeciesData)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(LoaderTest, LoadNexusWithSpeciesData) {
  auto report = loader_->LoadNexus("gold", kNexusWithData,
                                   LoadMode::kTreeWithSpeciesData);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->nodes_loaded, 5u);
  EXPECT_EQ(report->species_loaded, 3u);
  EXPECT_EQ(*species_->GetSequence("A"), "ACGT");
}

TEST_F(LoaderTest, LoadNexusStructureOnlySkipsSequences) {
  auto report =
      loader_->LoadNexus("gold", kNexusWithData, LoadMode::kTreeStructureOnly);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->species_loaded, 0u);
  EXPECT_EQ(*species_->Count(), 0u);
}

TEST_F(LoaderTest, AppendSpeciesDataToExistingTree) {
  ASSERT_TRUE(
      loader_->LoadNexus("gold", kNexusWithData, LoadMode::kTreeStructureOnly)
          .ok());
  auto report = loader_->LoadNexus("gold", kNexusWithData,
                                   LoadMode::kAppendSpeciesData);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->species_loaded, 3u);
  EXPECT_EQ(*species_->GetSequence("C"), "TTTT");
}

TEST_F(LoaderTest, AppendToUnknownTreeFails) {
  auto report = loader_->LoadNexus("ghost", kNexusWithData,
                                   LoadMode::kAppendSpeciesData);
  EXPECT_TRUE(report.status().IsNotFound());
}

TEST_F(LoaderTest, AppendUnknownSpeciesFails) {
  ASSERT_TRUE(loader_->LoadNewick("small", "(A:1,B:1);").ok());
  std::map<std::string, std::string> seqs = {{"A", "ACGT"}, {"Z", "ACGT"}};
  EXPECT_TRUE(loader_->AppendSpecies("small", seqs).status().IsNotFound());
}

TEST_F(LoaderTest, ProgressCallbackInvoked) {
  std::vector<std::string> phases;
  auto report = loader_->LoadNewick(
      "t", "(A:1,B:2);", LoadMode::kTreeStructureOnly,
      [&](const std::string& phase, uint64_t) { phases.push_back(phase); });
  ASSERT_TRUE(report.ok());
  ASSERT_GE(phases.size(), 3u);
  EXPECT_EQ(phases.front(), "parsing");
  EXPECT_EQ(phases.back(), "done");
}

TEST_F(LoaderTest, LoadPrebuiltTree) {
  PhyloTree t = MakePaperFigure1Tree();
  auto report = loader_->LoadTree("fig1", t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->nodes_loaded, 8u);
  auto loaded = trees_->LoadTree(report->tree_id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(PhyloTree::Equal(*loaded, t, 1e-9, /*ordered=*/true));
}

TEST_F(LoaderTest, DuplicateLeafNamesRejectedAtIngest) {
  // Duplicate leaf names would make name-addressed queries ambiguous;
  // ingest rejects them before anything is written.
  auto report = loader_->LoadNewick("dups", "((A:1,A:1):1,B:2);");
  ASSERT_TRUE(report.status().IsInvalidArgument());
  EXPECT_NE(report.status().ToString().find("duplicate leaf name"),
            std::string::npos);
  EXPECT_NE(report.status().ToString().find("'A'"), std::string::npos);
  EXPECT_TRUE(trees_->GetTreeInfo("dups").status().IsNotFound());
  // Internal-node names may repeat leaf names freely.
  EXPECT_TRUE(loader_->LoadNewick("ok", "((A:1,B:1)A:1,C:2);").ok());
}

TEST_F(LoaderTest, NexusWithoutTreesRejected) {
  const char* no_trees = "#NEXUS\nBEGIN TAXA;\nTAXLABELS A B;\nEND;\n";
  EXPECT_TRUE(loader_->LoadNexus("x", no_trees, LoadMode::kTreeStructureOnly)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace crimson
