// Session-level observability tests: SnapshotMetrics must be populated
// by every instrumented layer (query kinds, stage spans, storage,
// cache), the slow-query log must emit exactly the over-threshold
// queries, and sessions must not share counters.

#include "crimson/crimson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crimson {
namespace {

constexpr char kFig1Newick[] =
    "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)root;";

std::unique_ptr<Crimson> OpenSession(CrimsonOptions opts = {}) {
  opts.f = 3;
  opts.seed = 42;
  opts.batch_workers = 4;
  auto c = Crimson::Open(opts);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

std::vector<QueryRequest> SixKinds() {
  return {
      QueryRequest(LcaQuery{"Lla", "Syn"}),
      QueryRequest(ProjectQuery{{"Bha", "Lla", "Syn"}}),
      QueryRequest(SampleUniformQuery{3}),
      QueryRequest(SampleTimeQuery{4, 1.0}),
      QueryRequest(CladeQuery{{"Lla", "Spy"}}),
      QueryRequest(PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true}),
  };
}

TEST(ObsSessionTest, SnapshotPopulatesEveryLayer) {
  // On-disk + durable so the WAL layer is exercised too.
  constexpr const char* kDbPath = "/tmp/crimson_obs_session.db";
  std::remove(kDbPath);
  CrimsonOptions opts;
  opts.db_path = kDbPath;
  opts.durability = Durability::kGroupCommit;
  auto crimson = OpenSession(std::move(opts));
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok()) << report.status();
  for (int round = 0; round < 2; ++round) {
    for (const QueryRequest& request : SixKinds()) {
      ASSERT_TRUE(crimson->Execute(report->ref, request).ok());
    }
  }
  obs::MetricsSnapshot snap = crimson->SnapshotMetrics();

  // Session layer: per-kind latency histograms and counts.
  for (const char* kind : {"lca", "project", "sample_uniform", "sample_time",
                           "clade", "pattern_match"}) {
    std::string base = std::string("query.") + kind;
    EXPECT_EQ(snap.counter(base + ".count"), 2u) << kind;
    const obs::HistogramSnapshot* lat = snap.histogram(base + ".latency_us");
    ASSERT_NE(lat, nullptr) << kind;
    EXPECT_EQ(lat->count, 2u) << kind;
  }
  // Stage spans: the pure-compute span is recorded for every query.
  const obs::HistogramSnapshot* execute_us =
      snap.histogram("query.stage.execute_us");
  ASSERT_NE(execute_us, nullptr);
  EXPECT_GT(execute_us->count, 0u);

  // Storage layer: loading + reading the tree touched the buffer pool
  // and appended to the WAL.
  EXPECT_GT(snap.counter("storage.pool.hits") +
                snap.counter("storage.pool.misses"),
            0u);
  EXPECT_GT(snap.counter("storage.wal.appends"), 0u);

  // Cache layer: cacheable kinds hit on the second round.
  EXPECT_GT(snap.counter("cache.hits"), 0u);
  EXPECT_GT(snap.counter("cache.misses"), 0u);

  // MVCC + crack gauges are refreshed at snapshot time.
  EXPECT_EQ(snap.counters.count("pages.committed_epoch"), 1u);
  EXPECT_EQ(snap.counters.count("crack.stores"), 1u);
}

TEST(ObsSessionTest, ResultBytesGrowWithResults) {
  auto crimson = OpenSession();
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(
      crimson->Execute(report->ref, ProjectQuery{{"Bha", "Lla", "Syn"}}).ok());
  EXPECT_GT(crimson->SnapshotMetrics().counter("query.project.result_bytes"),
            0u);
}

TEST(ObsSessionTest, SlowQueryLogEmitsExactlyOverThresholdQueries) {
  std::vector<std::string> lines;
  std::mutex mu;
  CrimsonOptions opts;
  opts.query_cache_bytes = 0;  // no sub-microsecond cache hits
  opts.slow_query_micros = 1;
  opts.slow_query_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  auto crimson = OpenSession(std::move(opts));
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  constexpr int kQueries = 10;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(
        crimson
            ->Execute(report->ref,
                      PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true})
            .ok());
  }
  ASSERT_EQ(lines.size(), static_cast<size_t>(kQueries));
  for (const std::string& line : lines) {
    EXPECT_EQ(line.rfind("slow_query total_us=", 0), 0u) << line;
    EXPECT_NE(line.find(" kind=pattern_match"), std::string::npos) << line;
    EXPECT_NE(line.find(" params=tree=fig1"), std::string::npos) << line;
    EXPECT_NE(line.find(" status=ok"), std::string::npos) << line;
    EXPECT_NE(line.find(" spans="), std::string::npos) << line;
  }
  EXPECT_EQ(crimson->SnapshotMetrics().counter("query.slow"),
            static_cast<uint64_t>(kQueries));
}

TEST(ObsSessionTest, HugeThresholdLogsNothing) {
  std::vector<std::string> lines;
  std::mutex mu;
  CrimsonOptions opts;
  opts.slow_query_micros = 1ull << 40;
  opts.slow_query_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  auto crimson = OpenSession(std::move(opts));
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  for (const QueryRequest& request : SixKinds()) {
    ASSERT_TRUE(crimson->Execute(report->ref, request).ok());
  }
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(crimson->SnapshotMetrics().counter("query.slow"), 0u);
}

TEST(ObsSessionTest, SessionsDoNotShareCounters) {
  auto a = OpenSession();
  auto b = OpenSession();
  auto ra = a->LoadNewick("fig1", kFig1Newick);
  auto rb = b->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a->Execute(ra->ref, LcaQuery{"Lla", "Syn"}).ok());
  }
  EXPECT_EQ(a->SnapshotMetrics().counter("query.lca.count"), 5u);
  EXPECT_EQ(b->SnapshotMetrics().counter("query.lca.count"), 0u);
}

TEST(ObsSessionStress, BatchesRaceSnapshotsWithoutLosingCounts) {
  auto crimson = OpenSession();
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  constexpr int kRounds = 50;
  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    while (!done.load()) {
      (void)crimson->SnapshotMetrics();
    }
  });
  std::vector<QueryRequest> requests = SixKinds();
  for (int round = 0; round < kRounds; ++round) {
    auto results = crimson->ExecuteBatch(report->ref, requests);
    for (const auto& r : results) ASSERT_TRUE(r.ok());
  }
  done.store(true);
  snapshotter.join();
  obs::MetricsSnapshot snap = crimson->SnapshotMetrics();
  uint64_t total = 0;
  for (const char* kind : {"lca", "project", "sample_uniform", "sample_time",
                           "clade", "pattern_match"}) {
    total += snap.counter(std::string("query.") + kind + ".count");
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kRounds) * 6);
}

}  // namespace
}  // namespace crimson
