#include "crimson/repositories.h"

#include <gtest/gtest.h>

#include <limits>

#include "sim/tree_sim.h"
#include "storage/file.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

class RepositoriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto trees = TreeRepository::Open(db_.get());
    ASSERT_TRUE(trees.ok()) << trees.status();
    trees_ = std::move(trees).value();
    auto species = SpeciesRepository::Open(db_.get());
    ASSERT_TRUE(species.ok());
    species_ = std::move(species).value();
    auto queries = QueryRepository::Open(db_.get());
    ASSERT_TRUE(queries.ok());
    queries_ = std::move(queries).value();
  }

  int64_t StoreFig1(const std::string& name = "fig1") {
    PhyloTree t = MakePaperFigure1Tree();
    LayeredDeweyScheme scheme(3);
    EXPECT_TRUE(scheme.Build(t).ok());
    auto id = trees_->StoreTree(name, t, scheme);
    EXPECT_TRUE(id.ok()) << id.status();
    return *id;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TreeRepository> trees_;
  std::unique_ptr<SpeciesRepository> species_;
  std::unique_ptr<QueryRepository> queries_;
};

TEST_F(RepositoriesTest, StoreAndLoadRoundTrip) {
  int64_t id = StoreFig1();
  auto info = trees_->GetTreeInfo("fig1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->tree_id, id);
  EXPECT_EQ(info->n_nodes, 8);
  EXPECT_EQ(info->n_leaves, 5);
  EXPECT_EQ(info->f, 3);
  EXPECT_EQ(info->max_depth, 3);

  auto loaded = trees_->LoadTree(id);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(PhyloTree::Equal(*loaded, MakePaperFigure1Tree(), 1e-9,
                               /*ordered=*/true));
}

TEST_F(RepositoriesTest, FindNodeByName) {
  int64_t id = StoreFig1();
  PhyloTree t = MakePaperFigure1Tree();
  for (const char* name : {"Bha", "Lla", "Spy", "Syn", "Bsu"}) {
    auto node = trees_->FindNodeByName(id, name);
    ASSERT_TRUE(node.ok()) << name;
    EXPECT_EQ(*node, t.FindByName(name));
  }
  EXPECT_TRUE(trees_->FindNodeByName(id, "Nope").status().IsNotFound());
}

TEST_F(RepositoriesTest, NamesScopedPerTree) {
  int64_t id1 = StoreFig1("first");
  int64_t id2 = StoreFig1("second");
  ASSERT_NE(id1, id2);
  auto n1 = trees_->FindNodeByName(id1, "Lla");
  auto n2 = trees_->FindNodeByName(id2, "Lla");
  ASSERT_TRUE(n1.ok() && n2.ok());
  EXPECT_EQ(*n1, *n2);  // same position in identical trees
  auto list = trees_->ListTrees();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

TEST_F(RepositoriesTest, DuplicateTreeNameRejected) {
  StoreFig1("dup");
  PhyloTree t = MakePaperFigure1Tree();
  LayeredDeweyScheme scheme(3);
  ASSERT_TRUE(scheme.Build(t).ok());
  EXPECT_TRUE(trees_->StoreTree("dup", t, scheme).status().IsAlreadyExists());
}

TEST_F(RepositoriesTest, GetNodePointAccess) {
  int64_t id = StoreFig1();
  PhyloTree t = MakePaperFigure1Tree();
  NodeId lla = t.FindByName("Lla");
  auto row = trees_->GetNode(id, lla);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->name, "Lla");
  EXPECT_EQ(row->parent, t.parent(lla));
  EXPECT_DOUBLE_EQ(row->edge_length, 1.0);
  EXPECT_DOUBLE_EQ(row->root_weight, 2.25);
  EXPECT_EQ(row->subtree, 1u);  // Figure 4: Lla is in the split subtree
  EXPECT_TRUE(trees_->GetNode(id, 999).status().IsNotFound());
}

TEST_F(RepositoriesTest, TimeRangeQueryUsesWeightIndex) {
  int64_t id = StoreFig1();
  PhyloTree t = MakePaperFigure1Tree();
  // Nodes with weight in [1.0, 2.4): x(1.25), Bsu(1.25), Bha(2.25),
  // Lla(2.25), Spy(2.25).
  auto nodes = trees_->NodesInTimeRange(id, 1.0, 2.4);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(nodes->size(), 5u);
  // Upper bound excluded: Syn at 2.5 is out.
  for (NodeId n : *nodes) EXPECT_NE(n, t.FindByName("Syn"));
}

TEST_F(RepositoriesTest, DropTreeRemovesEverything) {
  int64_t id = StoreFig1("doomed");
  ASSERT_TRUE(trees_->DropTree(id).ok());
  EXPECT_TRUE(trees_->GetTreeInfo("doomed").status().IsNotFound());
  EXPECT_TRUE(trees_->LoadTree(id).status().IsNotFound());
  EXPECT_TRUE(trees_->FindNodeByName(id, "Lla").status().IsNotFound());
}

TEST_F(RepositoriesTest, SpeciesRepositoryRoundTrip) {
  int64_t id = StoreFig1();
  ASSERT_TRUE(species_->Put(id, "Bha", 5, "ACGTACGT").ok());
  ASSERT_TRUE(species_->Put(id, "Lla", 6, "TTTTACGT").ok());
  auto seq = species_->GetSequence("Bha");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, "ACGTACGT");
  EXPECT_TRUE(species_->GetSequence("Zzz").status().IsNotFound());
  auto all = species_->SequencesForTree(id);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  auto subset = species_->SequencesFor({"Lla"});
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->at("Lla"), "TTTTACGT");
  EXPECT_TRUE(species_->SequencesFor({"Lla", "Zzz"}).status().IsNotFound());
  EXPECT_EQ(*species_->Count(), 2u);
}

TEST_F(RepositoriesTest, LongSequencesSpillToOverflowPages) {
  int64_t id = StoreFig1();
  std::string genome(200000, 'A');
  for (size_t i = 0; i < genome.size(); ++i) genome[i] = "ACGT"[i % 4];
  ASSERT_TRUE(species_->Put(id, "Bha", 5, genome).ok());
  auto seq = species_->GetSequence("Bha");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, genome);
}

TEST_F(RepositoriesTest, QueryRepositoryHistoryOrder) {
  for (int i = 0; i < 5; ++i) {
    auto id = queries_->Record("lca", "a=x&b=y", "result " + std::to_string(i));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i + 1);
  }
  auto history = queries_->History(3);
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 3u);
  EXPECT_EQ((*history)[0].query_id, 5);  // newest first
  EXPECT_EQ((*history)[2].query_id, 3);
  auto one = queries_->Get(2);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->summary, "result 1");
  EXPECT_TRUE(queries_->Get(99).status().IsNotFound());
}

TEST(RepositoriesPersistenceTest, SurvivesReopen) {
  std::string path = testing::TempDir() + "/crimson_repo_test.db";
  RemoveFile(path);
  int64_t tree_id;
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    auto trees = TreeRepository::Open(db->get());
    ASSERT_TRUE(trees.ok());
    PhyloTree t = MakePaperFigure1Tree();
    LayeredDeweyScheme scheme(3);
    ASSERT_TRUE(scheme.Build(t).ok());
    auto id = (*trees)->StoreTree("persisted", t, scheme);
    ASSERT_TRUE(id.ok());
    tree_id = *id;
    auto species = SpeciesRepository::Open(db->get());
    ASSERT_TRUE(species.ok());
    ASSERT_TRUE((*species)->Put(tree_id, "Bha", 5, "ACGT").ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    auto trees = TreeRepository::Open(db->get());
    ASSERT_TRUE(trees.ok());
    auto loaded = (*trees)->LoadTree(tree_id);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_TRUE(PhyloTree::Equal(*loaded, MakePaperFigure1Tree(), 1e-9,
                                 /*ordered=*/true));
    auto species = SpeciesRepository::Open(db->get());
    ASSERT_TRUE(species.ok());
    EXPECT_EQ(*(*species)->GetSequence("Bha"), "ACGT");
  }
  RemoveFile(path);
}

// ---------------------------------------------------------------------------
// Persisted label index + bulk-load path
// ---------------------------------------------------------------------------

TEST_F(RepositoriesTest, PersistedLabelsByteMatchFreshRelabel) {
  Rng rng(0x1AB31);
  YuleOptions opts;
  opts.n_leaves = 800;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  LayeredDeweyScheme fresh(8);
  ASSERT_TRUE(fresh.Build(*t).ok());
  auto id = trees_->StoreTree("labeled", *t, fresh);
  ASSERT_TRUE(id.ok());

  auto loaded = trees_->LoadScheme(*id);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::string fresh_bytes, loaded_bytes;
  fresh.EncodeTo(&fresh_bytes);
  loaded->EncodeTo(&loaded_bytes);
  EXPECT_EQ(loaded_bytes, fresh_bytes);
  EXPECT_EQ(loaded->f(), fresh.f());
  EXPECT_EQ(loaded->node_count(), t->size());

  // The deserialized scheme answers queries like the fresh one.
  for (int i = 0; i < 200; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t->size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t->size()));
    EXPECT_EQ(*loaded->Lca(a, b), *fresh.Lca(a, b));
  }
}

TEST_F(RepositoriesTest, LabelsRemovedWithTree) {
  int64_t id = StoreFig1("doomed_labels");
  ASSERT_TRUE(trees_->LoadScheme(id).ok());
  ASSERT_TRUE(trees_->DropTree(id).ok());
  EXPECT_TRUE(trees_->LoadScheme(id).status().IsNotFound());
}

TEST_F(RepositoriesTest, LabelsOptional) {
  trees_->set_persist_labels(false);
  int64_t id = StoreFig1("unlabeled");
  EXPECT_TRUE(trees_->LoadScheme(id).status().IsNotFound());
  // The tree itself still round-trips.
  auto loaded = trees_->LoadTree(id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(PhyloTree::Equal(*loaded, MakePaperFigure1Tree(), 1e-9,
                               /*ordered=*/true));
}

/// Bulk-loaded and per-row stores must be observationally identical
/// through every repository read path.
void CheckBulkMatchesPerRowStore(uint32_t n_leaves, uint64_t seed) {
  Rng rng(seed);
  YuleOptions opts;
  opts.n_leaves = n_leaves;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(*t).ok());

  auto db_bulk = std::move(Database::OpenInMemory()).value();
  auto bulk = std::move(TreeRepository::Open(db_bulk.get())).value();
  bulk->set_bulk_load_threshold(0);
  auto db_row = std::move(Database::OpenInMemory()).value();
  auto per_row = std::move(TreeRepository::Open(db_row.get())).value();
  per_row->set_bulk_load_threshold(std::numeric_limits<size_t>::max());

  auto id_bulk = bulk->StoreTree("yule", *t, scheme);
  auto id_row = per_row->StoreTree("yule", *t, scheme);
  ASSERT_TRUE(id_bulk.ok() && id_row.ok());
  ASSERT_EQ(*id_bulk, *id_row);

  auto loaded_bulk = bulk->LoadTree(*id_bulk);
  auto loaded_row = per_row->LoadTree(*id_row);
  ASSERT_TRUE(loaded_bulk.ok() && loaded_row.ok());
  EXPECT_TRUE(PhyloTree::Equal(*loaded_bulk, *t, 1e-9, /*ordered=*/true));
  EXPECT_TRUE(
      PhyloTree::Equal(*loaded_bulk, *loaded_row, 1e-9, /*ordered=*/true));

  for (int i = 0; i < 50; ++i) {
    NodeId n = static_cast<NodeId>(rng.Uniform(t->size()));
    auto row_a = bulk->GetNode(*id_bulk, n);
    auto row_b = per_row->GetNode(*id_row, n);
    ASSERT_TRUE(row_a.ok() && row_b.ok());
    EXPECT_EQ(row_a->parent, row_b->parent);
    EXPECT_EQ(row_a->name, row_b->name);
    EXPECT_EQ(row_a->subtree, row_b->subtree);
    EXPECT_DOUBLE_EQ(row_a->root_weight, row_b->root_weight);
  }
  for (int i = 0; i < 20; ++i) {
    std::string name =
        "S" + std::to_string(rng.Uniform(n_leaves));
    auto n_a = bulk->FindNodeByName(*id_bulk, name);
    auto n_b = per_row->FindNodeByName(*id_row, name);
    ASSERT_TRUE(n_a.ok() && n_b.ok()) << name;
    EXPECT_EQ(*n_a, *n_b) << name;
  }
  auto range_a = bulk->NodesInTimeRange(*id_bulk, 0.5, 2.0);
  auto range_b = per_row->NodesInTimeRange(*id_row, 0.5, 2.0);
  ASSERT_TRUE(range_a.ok() && range_b.ok());
  EXPECT_EQ(*range_a, *range_b);
}

TEST(RepositoriesBulkTest, BulkStoreMatchesPerRowStore) {
  CheckBulkMatchesPerRowStore(700, 0xB0B0);
}

TEST(RepositoriesBulkStressTest, LargeBulkStoresMatchPerRow) {
  // Dialed-up version: ctest -C stress -L stress.
  Rng rng(0x57E5);
  for (int rep = 0; rep < 2; ++rep) {
    CheckBulkMatchesPerRowStore(4000 + static_cast<uint32_t>(
                                           rng.Uniform(4000)),
                                rng.Next());
  }
}

TEST(RepositoriesPersistenceTest, LabelsSurviveReopen) {
  std::string path = testing::TempDir() + "/crimson_labels_test.db";
  RemoveFile(path);
  int64_t tree_id;
  std::string stored_bytes;
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    auto trees = TreeRepository::Open(db->get());
    ASSERT_TRUE(trees.ok());
    Rng rng(0xD15C);
    YuleOptions opts;
    opts.n_leaves = 300;
    auto t = SimulateYule(opts, &rng);
    ASSERT_TRUE(t.ok());
    LayeredDeweyScheme scheme(5);
    ASSERT_TRUE(scheme.Build(*t).ok());
    auto id = (*trees)->StoreTree("persisted_labels", *t, scheme);
    ASSERT_TRUE(id.ok());
    tree_id = *id;
    scheme.EncodeTo(&stored_bytes);
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    auto trees = TreeRepository::Open(db->get());
    ASSERT_TRUE(trees.ok());
    auto scheme = (*trees)->LoadScheme(tree_id);
    ASSERT_TRUE(scheme.ok()) << scheme.status();
    std::string reloaded_bytes;
    scheme->EncodeTo(&reloaded_bytes);
    EXPECT_EQ(reloaded_bytes, stored_bytes);
    EXPECT_EQ(scheme->f(), 5u);
  }
  RemoveFile(path);
}

TEST(RepositoriesScaleTest, ThousandLeafTreeRoundTrip) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto trees = TreeRepository::Open(db->get());
  ASSERT_TRUE(trees.ok());
  Rng rng(314);
  YuleOptions opts;
  opts.n_leaves = 1000;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(*t).ok());
  auto id = (*trees)->StoreTree("yule1k", *t, scheme);
  ASSERT_TRUE(id.ok());
  auto loaded = (*trees)->LoadTree(*id);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(PhyloTree::Equal(*loaded, *t, 1e-9, /*ordered=*/true));
  // Point access against the big nodes table.
  auto node = (*trees)->FindNodeByName(*id, "S500");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(t->name(*node), "S500");
}

}  // namespace
}  // namespace crimson
