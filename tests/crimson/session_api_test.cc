// Tests for the handle-based session API: TreeRef binding, the typed
// Execute dispatch, RerunQuery round-trips across all six query kinds,
// ExecuteBatch determinism vs. sequential execution, and seed
// propagation from CrimsonOptions.

#include "crimson/crimson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <set>
#include <thread>

#include "common/string_util.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace crimson {
namespace {

constexpr char kFig1Newick[] =
    "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)root;";

/// A star tree with `n` leaves s0..s{n-1}; big enough that uniform
/// samples under different seeds collide with negligible probability.
std::string WideNewick(size_t n) {
  std::string out = "(";
  for (size_t i = 0; i < n; ++i) {
    if (i) out.push_back(',');
    out += StrFormat("s%zu:1", i);
  }
  out += ")r;";
  return out;
}

std::unique_ptr<Crimson> OpenSession(uint64_t seed, size_t workers = 4) {
  CrimsonOptions opts;
  opts.f = 3;
  opts.seed = seed;
  opts.batch_workers = workers;
  auto c = Crimson::Open(opts);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

TEST(TreeRefTest, LoadReturnsHandleAndOpenTreeIsStable) {
  auto crimson = OpenSession(42);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ref.valid());
  EXPECT_EQ(report->nodes_loaded, 8u);

  auto reopened = crimson->OpenTree("fig1");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*reopened, report->ref);

  EXPECT_TRUE(crimson->OpenTree("ghost").status().IsNotFound());
}

TEST(TreeRefTest, InvalidRefsAreRejected) {
  auto crimson = OpenSession(42);
  ASSERT_TRUE(crimson->LoadNewick("fig1", kFig1Newick).ok());
  TreeRef invalid;
  EXPECT_FALSE(invalid.valid());
  auto r = crimson->Execute(invalid, LcaQuery{"Lla", "Spy"});
  EXPECT_TRUE(r.status().IsInvalidArgument());
  // A ref from another session does not resolve here either.
  auto other = OpenSession(42);
  ASSERT_TRUE(other->LoadNewick("a", kFig1Newick).ok());
  ASSERT_TRUE(other->LoadNewick("b", kFig1Newick).ok());
  auto foreign = other->OpenTree("b");
  ASSERT_TRUE(foreign.ok());
  EXPECT_TRUE(
      crimson->Execute(*foreign, LcaQuery{"Lla", "Spy"}).status()
          .IsInvalidArgument());
}

TEST(ExecuteTest, AllSixKindsFlowThroughOneDispatch) {
  auto crimson = OpenSession(42);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  TreeRef tree = report->ref;

  auto lca = crimson->Execute(tree, LcaQuery{"Lla", "Syn"});
  ASSERT_TRUE(lca.ok()) << lca.status();
  EXPECT_EQ(std::get<LcaAnswer>(*lca).name, "root");

  auto proj = crimson->Execute(tree, ProjectQuery{{"Bha", "Lla", "Syn"}});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(std::get<ProjectAnswer>(*proj).projection.LeafCount(), 3u);

  auto uni = crimson->Execute(tree, SampleUniformQuery{3});
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(std::get<SampleAnswer>(*uni).species.size(), 3u);

  auto timed = crimson->Execute(tree, SampleTimeQuery{4, 1.0});
  ASSERT_TRUE(timed.ok());
  const auto& names = std::get<SampleAnswer>(*timed).species;
  std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.count("Bha"));
  EXPECT_TRUE(set.count("Syn"));
  EXPECT_TRUE(set.count("Bsu"));

  auto clade = crimson->Execute(tree, CladeQuery{{"Lla", "Spy"}});
  ASSERT_TRUE(clade.ok());
  EXPECT_EQ(std::get<CladeAnswer>(*clade).node_count, 3u);
  EXPECT_EQ(std::get<CladeAnswer>(*clade).leaf_count, 2u);

  auto pattern = crimson->Execute(
      tree, PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true});
  ASSERT_TRUE(pattern.ok());
  EXPECT_TRUE(std::get<PatternAnswer>(*pattern).exact);

  // Every execution above went through the recorded-history path.
  auto history = crimson->QueryHistory();
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history->size(), 6u);
  EXPECT_EQ((*history)[0].kind, "pattern_match");
  EXPECT_EQ((*history)[5].kind, "lca");
}

TEST(RerunTest, RoundTripAcrossAllSixKinds) {
  auto crimson = OpenSession(42);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  TreeRef tree = report->ref;

  const QueryRequest requests[] = {
      QueryRequest(LcaQuery{"Lla", "Syn"}),
      QueryRequest(ProjectQuery{{"Bha", "Lla", "Syn"}}),
      QueryRequest(SampleUniformQuery{3}),
      QueryRequest(SampleTimeQuery{4, 1.0}),
      QueryRequest(CladeQuery{{"Lla", "Spy"}}),
      QueryRequest(PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true}),
  };
  std::map<std::string, int64_t> original_ids;
  for (const QueryRequest& request : requests) {
    ASSERT_TRUE(crimson->Execute(tree, request).ok());
    auto history = crimson->QueryHistory(1);
    ASSERT_TRUE(history.ok());
    const auto& entry = (*history)[0];
    EXPECT_EQ(entry.kind, std::string(QueryKindName(request)));
    original_ids[entry.kind] = entry.query_id;

    auto rerun = crimson->RerunQuery(entry.query_id);
    ASSERT_TRUE(rerun.ok()) << entry.kind << ": " << rerun.status();

    // The rerun re-executes through Execute, so it appends its own
    // history entry whose kind and summary must match the original.
    auto after = crimson->QueryHistory(1);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ((*after)[0].kind, entry.kind);
    EXPECT_EQ((*after)[0].summary, entry.summary) << entry.kind;
    EXPECT_EQ((*after)[0].params, entry.params) << entry.kind;
  }

  // Deterministic kinds reproduce their exact output.
  auto lca_rerun_text = crimson->RerunQuery(original_ids["lca"]);
  ASSERT_TRUE(lca_rerun_text.ok());
  EXPECT_NE(lca_rerun_text->find("name=root"), std::string::npos);
  auto proj_rerun = crimson->RerunQuery(original_ids["project"]);
  ASSERT_TRUE(proj_rerun.ok());
  auto reparsed = ParseNewick(*proj_rerun);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->LeafCount(), 3u);
}

TEST(ExecuteBatchTest, BatchedIdenticalToSequentialForSameSeed) {
  // Session A executes the list batched on >= 4 workers; session B
  // (same seed) executes it sequentially. Rendered results must be
  // byte-identical, index by index.
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.emplace_back(LcaQuery{"Lla", i % 2 ? "Syn" : "Spy"});
    requests.emplace_back(SampleUniformQuery{3});
    requests.emplace_back(ProjectQuery{{"Bha", "Lla", "Syn"}});
    requests.emplace_back(SampleTimeQuery{4, 1.0});
    requests.emplace_back(CladeQuery{{"Lla", "Spy"}});
    requests.emplace_back(
        PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true});
  }

  auto a = OpenSession(/*seed=*/7, /*workers=*/4);
  auto ra = a->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(ra.ok());
  auto batched = a->ExecuteBatch(ra->ref, requests);
  ASSERT_EQ(batched.size(), requests.size());

  auto b = OpenSession(/*seed=*/7, /*workers=*/4);
  auto rb = b->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(rb.ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto sequential = b->Execute(rb->ref, requests[i]);
    ASSERT_TRUE(sequential.ok()) << i << ": " << sequential.status();
    ASSERT_TRUE(batched[i].ok()) << i << ": " << batched[i].status();
    EXPECT_EQ(RenderResult(*batched[i]), RenderResult(*sequential))
        << "request " << i;
  }

  // Histories agree in order, kind, and summary too.
  auto ha = a->QueryHistory(requests.size());
  auto hb = b->QueryHistory(requests.size());
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  ASSERT_EQ(ha->size(), hb->size());
  for (size_t i = 0; i < ha->size(); ++i) {
    EXPECT_EQ((*ha)[i].kind, (*hb)[i].kind);
    EXPECT_EQ((*ha)[i].summary, (*hb)[i].summary);
  }
}

TEST(ExecuteBatchTest, OneWorkerAndEightWorkersAreByteIdentical) {
  // The worker count is a pure throughput knob: ExecuteBatch on a
  // single worker and on eight must produce byte-identical renderings
  // for all six query kinds (tickets are assigned in list order before
  // dispatch, so the draws cannot depend on scheduling).
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 6; ++i) {
    requests.emplace_back(LcaQuery{"Lla", i % 2 ? "Syn" : "Spy"});
    requests.emplace_back(ProjectQuery{{"Bha", "Lla", "Syn"}});
    requests.emplace_back(SampleUniformQuery{3});
    requests.emplace_back(SampleTimeQuery{4, 1.0});
    requests.emplace_back(CladeQuery{{"Lla", "Spy"}});
    requests.emplace_back(
        PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true});
  }

  auto one = OpenSession(/*seed=*/11, /*workers=*/1);
  auto eight = OpenSession(/*seed=*/11, /*workers=*/8);
  auto r1 = one->LoadNewick("fig1", kFig1Newick);
  auto r8 = eight->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());

  auto out1 = one->ExecuteBatch(r1->ref, requests);
  auto out8 = eight->ExecuteBatch(r8->ref, requests);
  ASSERT_EQ(out1.size(), requests.size());
  ASSERT_EQ(out8.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(out1[i].ok()) << i << ": " << out1[i].status();
    ASSERT_TRUE(out8[i].ok()) << i << ": " << out8[i].status();
    EXPECT_EQ(RenderResult(*out1[i]), RenderResult(*out8[i]))
        << "request " << i;
  }
}

TEST(ExecuteBatchTest, ErrorsAreReportedPerQuery) {
  auto crimson = OpenSession(42);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  std::vector<QueryRequest> requests = {
      QueryRequest(LcaQuery{"Lla", "Spy"}),
      QueryRequest(LcaQuery{"Lla", "Zzz"}),  // unknown species
      QueryRequest(SampleUniformQuery{3}),
  };
  auto results = crimson->ExecuteBatch(report->ref, requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].status().IsNotFound());
  EXPECT_TRUE(results[2].ok());
  // Only the successes were recorded.
  auto history = crimson->QueryHistory();
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);
}

TEST(SeedTest, DifferentSeedsProduceDifferentSamples) {
  const std::string wide = WideNewick(48);
  auto a = OpenSession(/*seed=*/1);
  auto b = OpenSession(/*seed=*/2);
  auto c = OpenSession(/*seed=*/1);
  ASSERT_TRUE(a->LoadNewick("wide", wide).ok());
  ASSERT_TRUE(b->LoadNewick("wide", wide).ok());
  ASSERT_TRUE(c->LoadNewick("wide", wide).ok());

  auto sa = a->SampleUniform("wide", 8);
  auto sb = b->SampleUniform("wide", 8);
  auto sc = c->SampleUniform("wide", 8);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(sc.ok());
  EXPECT_NE(*sa, *sb) << "different seeds must produce different samples";
  EXPECT_EQ(*sa, *sc) << "equal seeds must reproduce the same samples";
}

TEST(SeedTest, EachQueryDrawsFromItsOwnTicketedRng) {
  // Two same-seed sessions issue the same queries but interleaved with
  // different non-sampling queries; sampling results must still agree
  // because tickets advance identically.
  auto a = OpenSession(9);
  auto b = OpenSession(9);
  ASSERT_TRUE(a->LoadNewick("fig1", kFig1Newick).ok());
  ASSERT_TRUE(b->LoadNewick("fig1", kFig1Newick).ok());
  ASSERT_TRUE(a->Lca("fig1", "Lla", "Spy").ok());
  ASSERT_TRUE(b->MinimalClade("fig1", {"Lla", "Spy"}).ok());
  auto sa = a->SampleUniform("fig1", 3);
  auto sb = b->SampleUniform("fig1", 3);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(*sa, *sb);
}

TEST(BulkLoadPathTest, BulkAndPerRowSessionsAnswerIdentically) {
  // A bulk-loaded tree (bottom-up index builds + persisted labels) must
  // answer every query kind byte-identically to an insert-loaded one.
  Rng tree_rng(0xFACE);
  auto yule = SimulateYule([] {
    YuleOptions opts;
    opts.n_leaves = 600;
    return opts;
  }(), &tree_rng);
  ASSERT_TRUE(yule.ok());

  CrimsonOptions per_row_opts;
  per_row_opts.bulk_load_threshold = std::numeric_limits<size_t>::max();
  per_row_opts.persist_labels = false;
  CrimsonOptions bulk_opts;
  bulk_opts.bulk_load_threshold = 0;
  bulk_opts.persist_labels = true;

  auto per_row = std::move(Crimson::Open(per_row_opts)).value();
  auto bulk = std::move(Crimson::Open(bulk_opts)).value();
  TreeRef ref_a = per_row->LoadTree("yule", *yule).value().ref;
  TreeRef ref_b = bulk->LoadTree("yule", *yule).value().ref;

  std::vector<QueryRequest> requests = {
      LcaQuery{"S10", "S500"},
      ProjectQuery{{"S1", "S99", "S250", "S420"}},
      SampleUniformQuery{12},
      SampleTimeQuery{12, 0.8},
      CladeQuery{{"S33", "S44", "S55"}},
      PatternQuery{"(S1,S2);", false},
  };
  for (const QueryRequest& request : requests) {
    auto a = per_row->Execute(ref_a, request);
    auto b = bulk->Execute(ref_b, request);
    ASSERT_EQ(a.ok(), b.ok()) << QueryKindName(request);
    if (a.ok()) {
      EXPECT_EQ(RenderResult(*a), RenderResult(*b)) << QueryKindName(request);
    }
  }
}

TEST(TreeRefTest, ExportAndRenderTakeHandles) {
  // The TreeRef overloads answer identically to the name-keyed shims
  // and reject refs the session did not issue.
  auto crimson = OpenSession(42);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  TreeRef tree = report->ref;

  auto nexus_ref = crimson->ExportNexus(tree);
  auto nexus_name = crimson->ExportNexus("fig1");
  ASSERT_TRUE(nexus_ref.ok()) << nexus_ref.status();
  ASSERT_TRUE(nexus_name.ok());
  EXPECT_EQ(*nexus_ref, *nexus_name);
  EXPECT_NE(nexus_ref->find("#NEXUS"), std::string::npos);

  auto art_ref = crimson->RenderTree(tree);
  auto art_name = crimson->RenderTree("fig1");
  ASSERT_TRUE(art_ref.ok()) << art_ref.status();
  ASSERT_TRUE(art_name.ok());
  EXPECT_EQ(*art_ref, *art_name);
  EXPECT_NE(art_ref->find("Lla"), std::string::npos);

  TreeRef invalid;
  EXPECT_TRUE(crimson->ExportNexus(invalid).status().IsInvalidArgument());
  EXPECT_TRUE(crimson->RenderTree(invalid).status().IsInvalidArgument());
}

TEST(ConcurrencyTest, ParallelExecuteOnSharedSession) {
  auto crimson = OpenSession(42, /*workers=*/4);
  auto report = crimson->LoadNewick("fig1", kFig1Newick);
  ASSERT_TRUE(report.ok());
  TreeRef tree = report->ref;

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Result<QueryResult> r =
            (t + i) % 2 == 0
                ? crimson->Execute(tree, LcaQuery{"Lla", "Syn"})
                : crimson->Execute(tree, CladeQuery{{"Lla", "Spy"}});
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto history = crimson->QueryHistory(kThreads * kPerThread);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(ConcurrencyTest, RerunExperimentReplaysExactlyWhileReadersRun) {
  // An experiment is persisted, then replayed while reader threads
  // hammer the shared read path (queries, history, exports): the
  // replay must still match the original report run for run, because
  // it uses the *stored* RNG provenance, not the live ticket counter.
  Rng tree_rng(0x5EED);
  YuleOptions yule_opts;
  yule_opts.n_leaves = 32;
  auto gold = SimulateYule(yule_opts, &tree_rng);
  ASSERT_TRUE(gold.ok());
  SeqEvolveOptions seq_opts;
  seq_opts.seq_length = 96;
  auto evolver = SequenceEvolver::Create(seq_opts);
  auto sequences = evolver->EvolveLeaves(*gold, &tree_rng);
  ASSERT_TRUE(sequences.ok());

  auto crimson = OpenSession(42, /*workers=*/4);
  auto load = crimson->LoadTree("gold", *gold);
  ASSERT_TRUE(load.ok());
  ASSERT_TRUE(crimson->AppendSpeciesData("gold", *sequences).ok());

  ExperimentSpec spec;
  spec.algorithms = {"nj", "upgma"};
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 8;
  spec.selections = {sel};
  spec.replicates = 2;
  spec.compute_triplets = false;
  auto original = crimson->RunExperiment(load->ref, spec);
  ASSERT_TRUE(original.ok()) << original.status();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (!crimson->Execute(load->ref, LcaQuery{"S1", "S20"}).ok()) {
          ++failures;
        }
        if (!crimson->QueryHistory(3).ok()) ++failures;
        if (!crimson->ExportNexus(load->ref).ok()) ++failures;
      }
    });
  }
  auto replay = crimson->RerunExperiment(original->experiment_id);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);
  ASSERT_TRUE(replay.ok()) << replay.status();

  ASSERT_EQ(replay->runs.size(), original->runs.size());
  for (size_t i = 0; i < original->runs.size(); ++i) {
    const BenchmarkRun& a = original->runs[i];
    const BenchmarkRun& b = replay->runs[i];
    EXPECT_EQ(a.algorithm, b.algorithm) << "run " << i;
    EXPECT_EQ(a.sample_size, b.sample_size) << "run " << i;
    EXPECT_EQ(a.rf.distance, b.rf.distance) << "run " << i;
    EXPECT_EQ(a.rf.normalized, b.rf.normalized) << "run " << i;
    EXPECT_EQ(WriteNewick(a.reconstructed), WriteNewick(b.reconstructed))
        << "run " << i;
  }
}

TEST(ConcurrencyTest, ConcurrentOpenTreeMaterializesOnce) {
  auto crimson = OpenSession(42);
  ASSERT_TRUE(crimson->LoadNewick("fig1", kFig1Newick).ok());
  ASSERT_TRUE(crimson->LoadNewick("fig2", kFig1Newick).ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto ref = crimson->OpenTree(t % 2 ? "fig1" : "fig2");
      if (!ref.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace crimson
