// Session-level MVCC tests: queries racing a bulk StoreTree must see
// the pre-commit state byte-identically (cold OpenTree binds, all six
// query kinds, NEXUS export), and the query-history buffer must keep
// read-only queries off the writer path without losing entries or
// replay order.
//
// Identity protocol: the reader script is run once on a quiet session
// (baseline) and once on a fresh session over an identically rebuilt
// database while a writer bulk-loads large trees into the same tables.
// Both runs start from ticket 0 and the writer consumes no query
// tickets, so every result -- sampling draws included -- must be
// byte-identical; any torn or mid-transaction page the reader observed
// would break that. `*Stress*` variants scale the stored tree to the
// paper-scale 60k nodes.

#include "crimson/crimson.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"

namespace crimson {
namespace {

constexpr const char* kDbPath = "/tmp/crimson_snapshot_session.db";

struct GoldTree {
  PhyloTree tree;
  std::map<std::string, std::string> sequences;
};

GoldTree MakeGold(uint32_t n_leaves, uint64_t seed, bool with_sequences) {
  GoldTree g;
  Rng rng(seed);
  YuleOptions opts;
  opts.n_leaves = n_leaves;
  g.tree = std::move(SimulateYule(opts, &rng)).value();
  if (with_sequences) {
    SeqEvolveOptions seq_opts;
    seq_opts.seq_length = 64;
    auto evolver = SequenceEvolver::Create(seq_opts);
    g.sequences = std::move(evolver->EvolveLeaves(g.tree, &rng)).value();
  }
  return g;
}

std::string TreeName(int i) { return StrFormat("tree%d", i); }

/// Rebuilds the shared on-disk database with `n_trees` gold trees.
/// Deterministic: repeated builds produce identical storage content,
/// so the baseline and the concurrent phase read the same bytes.
void BuildSharedDb(int n_trees, uint32_t n_leaves) {
  std::remove(kDbPath);
  CrimsonOptions opts;
  opts.db_path = kDbPath;
  auto session = std::move(Crimson::Open(opts)).value();
  for (int i = 0; i < n_trees; ++i) {
    GoldTree gold = MakeGold(n_leaves, 0xC0FFEE + i, /*with_sequences=*/true);
    ASSERT_TRUE(session->LoadTree(TreeName(i), gold.tree).ok());
    ASSERT_TRUE(session->AppendSpeciesData(TreeName(i), gold.sequences).ok());
  }
  ASSERT_TRUE(session->Flush().ok());
}

/// The six query kinds against an n-leaf gold tree (leaves S0..S{n-1}).
std::vector<QueryRequest> SixKinds(uint32_t n_leaves) {
  const std::string a = StrFormat("S%u", n_leaves / 7);
  const std::string b = StrFormat("S%u", n_leaves - 2);
  return {
      QueryRequest(LcaQuery{a, b}),
      QueryRequest(ProjectQuery{{"S1", a, b, "S0"}}),
      QueryRequest(SampleUniformQuery{10}),
      QueryRequest(SampleTimeQuery{8, 0.5}),
      QueryRequest(CladeQuery{{"S2", "S3", a}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
}

std::unique_ptr<Crimson> OpenSharedSession() {
  CrimsonOptions opts;
  opts.db_path = kDbPath;
  opts.buffer_pool_pages = 256;
  opts.seed = 42;
  auto c = Crimson::Open(opts);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

/// The reader script: `iters` rounds of cold-then-cached OpenTree
/// binds, all six query kinds, and a NEXUS export per tree. Returns
/// every rendered result in order; `on_iteration(i)` runs before round
/// i (the concurrent phase uses it to line up with the writer).
std::vector<std::string> RunReaderScript(
    Crimson* session, int n_trees, uint32_t n_leaves, int iters,
    const std::function<void(int)>& on_iteration) {
  std::vector<QueryRequest> requests = SixKinds(n_leaves);
  std::vector<std::string> out;
  for (int iter = 0; iter < iters; ++iter) {
    if (on_iteration) on_iteration(iter);
    for (int i = 0; i < n_trees; ++i) {
      auto ref = session->OpenTree(TreeName(i));
      EXPECT_TRUE(ref.ok()) << ref.status();
      if (!ref.ok()) return out;
      for (const QueryRequest& request : requests) {
        auto r = session->Execute(*ref, request);
        EXPECT_TRUE(r.ok()) << r.status();
        out.push_back(r.ok() ? RenderResult(*r) : "<error>");
      }
      auto nexus = session->ExportNexus(*ref);
      EXPECT_TRUE(nexus.ok()) << nexus.status();
      out.push_back(nexus.ok() ? std::move(*nexus) : "<error>");
      // History reads must stay available mid-write too (content is
      // timestamped, so only success is asserted).
      EXPECT_TRUE(session->QueryHistory(5).ok());
    }
  }
  return out;
}

/// Baseline on a quiet session, then the identical script on a fresh
/// session over a rebuilt database while a writer bulk-loads
/// `writer_leaves`-leaf trees into the same relational tables. Every
/// result must match the baseline byte-for-byte, and at least one full
/// reader round must overlap an open store transaction.
void RunReaderVsBulkStoreTest(int n_trees, uint32_t n_leaves, int iters,
                              int writer_trees, uint32_t writer_leaves) {
  BuildSharedDb(n_trees, n_leaves);
  std::vector<std::string> baseline;
  {
    auto session = OpenSharedSession();
    baseline =
        RunReaderScript(session.get(), n_trees, n_leaves, iters, nullptr);
  }

  BuildSharedDb(n_trees, n_leaves);
  auto session = OpenSharedSession();
  Database* db = session->database();

  // Pre-simulate the writer's trees so its thread spends its time in
  // StoreTree, not in the Yule simulation.
  std::vector<GoldTree> to_store;
  to_store.reserve(writer_trees);
  for (int w = 0; w < writer_trees; ++w) {
    to_store.push_back(
        MakeGold(writer_leaves, 0xBEEF00 + w, /*with_sequences=*/false));
  }

  std::atomic<bool> writer_done{false};
  std::atomic<int> writer_failures{0};
  std::thread writer([&] {
    for (int w = 0; w < writer_trees; ++w) {
      if (!session->LoadTree(StrFormat("bulk%d", w), to_store[w].tree).ok()) {
        ++writer_failures;
        break;
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::atomic<int> overlapped_rounds{0};
  auto on_iteration = [&](int) {
    // Line the round up with an open store transaction (bounded wait;
    // the writer may already have finished).
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!writer_done.load(std::memory_order_acquire) && !db->in_txn() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (db->in_txn()) ++overlapped_rounds;
  };
  std::vector<std::string> concurrent = RunReaderScript(
      session.get(), n_trees, n_leaves, iters, on_iteration);
  writer.join();

  ASSERT_EQ(writer_failures.load(), 0);
  // The store dwarfs a reader round, so rounds must have overlapped an
  // open transaction -- i.e. the identity below was actually exercised
  // mid-StoreTree, not just before/after it.
  EXPECT_GE(overlapped_rounds.load(), 1);

  ASSERT_EQ(concurrent.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(concurrent[i], baseline[i]) << "result " << i;
  }

  // The bulk trees committed and are fully readable afterwards.
  auto trees = session->ListTrees();
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), static_cast<size_t>(n_trees + writer_trees));
}

TEST(SnapshotSessionTest, ReadersSeePreCommitStateDuringBulkStore) {
  RunReaderVsBulkStoreTest(/*n_trees=*/3, /*n_leaves=*/96, /*iters=*/6,
                           /*writer_trees=*/2, /*writer_leaves=*/6000);
}

TEST(SnapshotSessionTest, StressReadersSeePreCommitStateDuring60kNodeStore) {
  // 30000 leaves -> ~60k nodes: the paper-scale tree of the issue.
  RunReaderVsBulkStoreTest(/*n_trees=*/3, /*n_leaves=*/128, /*iters=*/10,
                           /*writer_trees=*/2, /*writer_leaves=*/30000);
}

// ---------------------------------------------------------------------------
// Query-history buffering
// ---------------------------------------------------------------------------

uint64_t PersistedHistoryRows(Crimson* session) {
  auto table = session->database()->OpenTable("queries");
  EXPECT_TRUE(table.ok());
  return table.ok() ? table->row_count() : 0;
}

TEST(SnapshotSessionTest, HistoryIsBufferedAndMergedIntoQueryHistory) {
  auto session = std::move(Crimson::Open({})).value();
  GoldTree gold = MakeGold(32, 0xFACE, /*with_sequences=*/false);
  auto load = session->LoadTree("t", gold.tree);
  ASSERT_TRUE(load.ok());

  ASSERT_TRUE(session->Execute(load->ref, LcaQuery{"S1", "S2"}).ok());
  ASSERT_TRUE(session->Execute(load->ref, CladeQuery{{"S1", "S2"}}).ok());
  ASSERT_TRUE(
      session->Execute(load->ref, ProjectQuery{{"S0", "S1", "S3"}}).ok());

  // Read-only queries never entered the writer path: nothing persisted
  // yet, but QueryHistory merges the buffer seamlessly.
  EXPECT_EQ(PersistedHistoryRows(session.get()), 0u);
  auto hist = session->QueryHistory(10);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), 3u);
  EXPECT_EQ((*hist)[0].kind, "project");
  EXPECT_EQ((*hist)[1].kind, "clade");
  EXPECT_EQ((*hist)[2].kind, "lca");
  EXPECT_EQ((*hist)[0].query_id, 3);
  EXPECT_EQ((*hist)[2].query_id, 1);

  // RerunQuery resolves buffered entries too (the mid-flush window is
  // closed by the flush lock).
  auto rerun = session->RerunQuery(1);
  ASSERT_TRUE(rerun.ok()) << rerun.status();

  // An explicit Flush drains the buffer; ids and order are unchanged.
  ASSERT_TRUE(session->Flush().ok());
  EXPECT_GE(PersistedHistoryRows(session.get()), 3u);
  auto after = session->QueryHistory(10);
  ASSERT_TRUE(after.ok());
  ASSERT_GE(after->size(), 3u);
  EXPECT_EQ(after->back().query_id, 1);
  EXPECT_EQ(after->back().kind, "lca");
}

TEST(SnapshotSessionTest, WriterPathDrainsHistoryBuffer) {
  auto session = std::move(Crimson::Open({})).value();
  GoldTree gold = MakeGold(32, 0xFACE, /*with_sequences=*/false);
  auto load = session->LoadTree("t", gold.tree);
  ASSERT_TRUE(load.ok());

  ASSERT_TRUE(session->Execute(load->ref, LcaQuery{"S1", "S2"}).ok());
  ASSERT_TRUE(session->Execute(load->ref, CladeQuery{{"S1", "S2"}}).ok());
  EXPECT_EQ(PersistedHistoryRows(session.get()), 0u);

  // The next write transaction carries the buffered entries with it.
  GoldTree gold2 = MakeGold(24, 0xFACE + 1, /*with_sequences=*/false);
  ASSERT_TRUE(session->LoadTree("t2", gold2.tree).ok());
  EXPECT_EQ(PersistedHistoryRows(session.get()), 2u);

  auto hist = session->QueryHistory(10);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), 2u);
  EXPECT_EQ((*hist)[0].kind, "clade");
  EXPECT_EQ((*hist)[1].kind, "lca");
}

TEST(SnapshotSessionTest, BufferCapTriggersOpportunisticFlush) {
  CrimsonOptions opts;
  opts.history_buffer_cap = 4;
  auto session = std::move(Crimson::Open(opts)).value();
  GoldTree gold = MakeGold(32, 0xFACE, /*with_sequences=*/false);
  auto load = session->LoadTree("t", gold.tree);
  ASSERT_TRUE(load.ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(session->Execute(load->ref, LcaQuery{"S1", "S3"}).ok());
  }
  // Two cap crossings flushed synchronously (the writer lock was free).
  EXPECT_GE(PersistedHistoryRows(session.get()), 8u);

  auto hist = session->QueryHistory(20);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), 10u);
  for (size_t i = 0; i < hist->size(); ++i) {
    EXPECT_EQ((*hist)[i].query_id, static_cast<int64_t>(10 - i));
  }
}

TEST(SnapshotSessionTest, HistorySurvivesReopenWithOrderAndIdsIntact) {
  constexpr const char* kPath = "/tmp/crimson_snapshot_history.db";
  std::remove(kPath);
  GoldTree gold = MakeGold(32, 0xFACE, /*with_sequences=*/false);
  {
    CrimsonOptions opts;
    opts.db_path = kPath;
    auto session = std::move(Crimson::Open(opts)).value();
    auto load = session->LoadTree("t", gold.tree);
    ASSERT_TRUE(load.ok());
    ASSERT_TRUE(session->Execute(load->ref, LcaQuery{"S1", "S2"}).ok());
    ASSERT_TRUE(session->Execute(load->ref, CladeQuery{{"S1", "S2"}}).ok());
    ASSERT_TRUE(
        session->Execute(load->ref, ProjectQuery{{"S0", "S1", "S3"}}).ok());
    // No explicit flush: session teardown must not lose the buffer.
  }
  CrimsonOptions opts;
  opts.db_path = kPath;
  auto session = std::move(Crimson::Open(opts)).value();
  auto hist = session->QueryHistory(10);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), 3u);
  EXPECT_EQ((*hist)[0].query_id, 3);
  EXPECT_EQ((*hist)[0].kind, "project");
  EXPECT_EQ((*hist)[2].query_id, 1);
  EXPECT_EQ((*hist)[2].kind, "lca");

  // Replay works from persisted entries, and new entries continue the
  // id sequence instead of reusing ids.
  ASSERT_TRUE(session->RerunQuery(1).ok());
  auto after = session->QueryHistory(10);
  ASSERT_TRUE(after.ok());
  ASSERT_GT(after->size(), 3u);
  EXPECT_EQ((*after)[0].query_id, static_cast<int64_t>(after->size()));
}

TEST(SnapshotSessionTest, StressHistoryKeepsOrderUnderConcurrentQueries) {
  CrimsonOptions opts;
  opts.history_buffer_cap = 16;
  auto session = std::move(Crimson::Open(opts)).value();
  GoldTree gold = MakeGold(48, 0xFACE, /*with_sequences=*/false);
  auto load = session->LoadTree("t", gold.tree);
  ASSERT_TRUE(load.ok());
  TreeRef ref = load->ref;

  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!session->Execute(ref, LcaQuery{"S1", "S3"}).ok()) ++failures;
        if (!session->QueryHistory(8).ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  ASSERT_TRUE(session->Flush().ok());
  auto hist = session->QueryHistory(kThreads * kPerThread + 10);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->size(), static_cast<size_t>(kThreads * kPerThread));
  // Newest first, every id present exactly once: the buffer/storage
  // merge lost nothing and preserved replay order.
  for (size_t i = 0; i < hist->size(); ++i) {
    EXPECT_EQ((*hist)[i].query_id,
              static_cast<int64_t>(hist->size() - i));
  }
}

}  // namespace
}  // namespace crimson
