// Integration test: the full Crimson pipeline of the paper.
//   1. Simulate a gold-standard tree (birth-death, clock broken) and
//      sequences along it (substitute for the CIPRes mega-tree).
//   2. Load tree + species data into an on-disk relational database.
//   3. Reopen, run structure queries through the facade.
//   4. Benchmark NJ and UPGMA on sampled projections and verify the
//      expected ordering (NJ is at least as accurate without a clock).

#include <gtest/gtest.h>

#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "storage/file.h"
#include "tree/newick.h"

namespace crimson {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kLeaves = 200;

  void SetUp() override {
    path_ = testing::TempDir() + "/crimson_e2e.db";
    RemoveFile(path_);

    Rng rng(20260612);
    BirthDeathOptions tree_opts;
    tree_opts.n_leaves = kLeaves;
    tree_opts.death_rate = 0.25;
    auto gold = SimulateBirthDeath(tree_opts, &rng);
    ASSERT_TRUE(gold.ok());
    gold_ = std::move(gold).value();
    // Normalize height to ~0.8 expected substitutions root-to-leaf and
    // break the molecular clock so UPGMA has something to lose.
    double max_w = 0;
    for (double w : gold_.RootPathWeights()) max_w = std::max(max_w, w);
    for (NodeId n = 1; n < gold_.size(); ++n) {
      gold_.set_edge_length(n, gold_.edge_length(n) / max_w * 0.8);
    }
    PerturbBranchRates(&gold_, 3.0, &rng);

    SeqEvolveOptions seq_opts;
    seq_opts.model = SubstModel::kHKY85;
    seq_opts.kappa = 2.5;
    seq_opts.base_freqs = {0.3, 0.2, 0.2, 0.3};
    seq_opts.seq_length = 1200;
    auto ev = SequenceEvolver::Create(seq_opts);
    ASSERT_TRUE(ev.ok());
    auto seqs = ev->EvolveLeaves(gold_, &rng);
    ASSERT_TRUE(seqs.ok());
    seqs_ = std::move(seqs).value();
  }

  void TearDown() override { RemoveFile(path_); }

  std::string path_;
  PhyloTree gold_;
  std::map<std::string, std::string> seqs_;
};

TEST_F(EndToEndTest, FullPipeline) {
  // ---- load into an on-disk database --------------------------------
  {
    CrimsonOptions opts;
    opts.db_path = path_;
    opts.f = 8;
    auto c = Crimson::Open(opts);
    ASSERT_TRUE(c.ok());
    auto report = (*c)->LoadTree("gold", gold_);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->nodes_loaded, gold_.size());
    auto append = (*c)->AppendSpeciesData("gold", seqs_);
    ASSERT_TRUE(append.ok()) << append.status();
    EXPECT_EQ(append->species_loaded, kLeaves);
    ASSERT_TRUE((*c)->Flush().ok());
  }

  // ---- reopen and query ----------------------------------------------
  CrimsonOptions opts;
  opts.db_path = path_;
  opts.seed = 99;
  auto c = Crimson::Open(opts);
  ASSERT_TRUE(c.ok());

  auto tree = (*c)->GetTree("gold");
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(PhyloTree::Equal(**tree, gold_, 1e-9, /*ordered=*/true));

  // LCA sanity against the in-memory oracle.
  auto lca = (*c)->Lca("gold", "S0", "S100");
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(lca->node,
            gold_.NaiveLca(gold_.FindByName("S0"), gold_.FindByName("S100")));

  // Projection of a handful of species is a valid tree over them.
  auto proj = (*c)->Project("gold", {"S1", "S7", "S42", "S99", "S150"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->LeafCount(), 5u);
  EXPECT_TRUE(proj->Validate().ok());

  // Time sampling draws below the frontier.
  auto sample = (*c)->SampleWithRespectToTime("gold", 32, 0.1);
  ASSERT_TRUE(sample.ok()) << sample.status();
  EXPECT_EQ(sample->size(), 32u);

  // ---- benchmark both algorithms --------------------------------------
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 48;
  auto nj = MakeNjAlgorithm(DistanceCorrection::kJC69);
  auto upgma = MakeUpgmaAlgorithm(DistanceCorrection::kJC69);
  double nj_total = 0, upgma_total = 0;
  const int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    auto nj_run = (*c)->Benchmark("gold", *nj, sel);
    ASSERT_TRUE(nj_run.ok()) << nj_run.status();
    auto up_run = (*c)->Benchmark("gold", *upgma, sel);
    ASSERT_TRUE(up_run.ok()) << up_run.status();
    nj_total += nj_run->rf.normalized;
    upgma_total += up_run->rf.normalized;
    EXPECT_EQ(nj_run->reference.LeafCount(), sel.k);
    EXPECT_EQ(nj_run->reconstructed.LeafCount(), sel.k);
  }
  // The paper's benchmarking purpose: the harness distinguishes
  // algorithms. Without a clock NJ must not be worse than UPGMA.
  EXPECT_LE(nj_total, upgma_total + 1e-9);
  // And with 1200 sites NJ should be respectable in absolute terms.
  EXPECT_LT(nj_total / kReps, 0.45);

  // ---- history captured the whole session ------------------------------
  auto history = (*c)->QueryHistory(100);
  ASSERT_TRUE(history.ok());
  EXPECT_GE(history->size(), 5u);
}

TEST_F(EndToEndTest, NexusExportImportCycle) {
  // Round-trip the gold standard through NEXUS, as the demo's
  // loading/visualizing story requires.
  NexusDocument doc;
  for (NodeId n : gold_.Leaves()) doc.taxa.emplace_back(gold_.name(n));
  for (const auto& [name, seq] : seqs_) doc.sequences[name] = seq;
  NexusTree nt;
  nt.name = "gold";
  nt.tree = gold_;
  doc.trees.push_back(std::move(nt));
  std::string text = WriteNexus(doc);

  auto c = Crimson::Open();
  ASSERT_TRUE(c.ok());
  auto report =
      (*c)->LoadNexus("gold", text, LoadMode::kTreeWithSpeciesData);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->nodes_loaded, gold_.size());
  EXPECT_EQ(report->species_loaded, kLeaves);
  auto tree = (*c)->GetTree("gold");
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(PhyloTree::Equal(**tree, gold_, 1e-6, /*ordered=*/true));
}

}  // namespace
}  // namespace crimson
