// Cross-scheme agreement: every labeling scheme must answer LCA and
// ancestor queries identically on identical trees. This is the central
// correctness property behind the paper's performance comparison --
// schemes differ in cost, never in answers.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "labeling/dewey_scheme.h"
#include "labeling/interval_scheme.h"
#include "labeling/layered_dewey.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

std::vector<std::unique_ptr<LabelingScheme>> AllSchemes() {
  std::vector<std::unique_ptr<LabelingScheme>> out;
  out.push_back(std::make_unique<DeweyScheme>());
  out.push_back(std::make_unique<LayeredDeweyScheme>(3));
  out.push_back(std::make_unique<LayeredDeweyScheme>(8));
  out.push_back(std::make_unique<IntervalScheme>());
  out.push_back(std::make_unique<NaiveScheme>());
  return out;
}

struct ShapeCase {
  const char* name;
  int kind;
  uint32_t size;
};

class CrossSchemeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(CrossSchemeTest, AllSchemesAgreeOnLcaAndAncestry) {
  const ShapeCase& c = GetParam();
  Rng rng(8000 + c.size);
  PhyloTree t;
  switch (c.kind) {
    case 0:
      t = MakeCaterpillar(c.size);
      break;
    case 1:
      t = MakeBalancedBinary(c.size);
      break;
    case 2:
      t = MakeRandomBinary(c.size, &rng);
      break;
    default:
      t = MakePaperFigure1Tree();
  }
  auto schemes = AllSchemes();
  for (auto& s : schemes) {
    ASSERT_TRUE(s->Build(t).ok()) << s->name();
    ASSERT_EQ(s->node_count(), t.size()) << s->name();
  }
  for (int i = 0; i < 800; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId expected = *schemes[0]->Lca(a, b);
    bool expected_anc = *schemes[0]->IsAncestorOrSelf(a, b);
    for (size_t k = 1; k < schemes.size(); ++k) {
      ASSERT_EQ(*schemes[k]->Lca(a, b), expected)
          << schemes[k]->name() << " disagrees on LCA(" << a << "," << b
          << ") for " << c.name;
      ASSERT_EQ(*schemes[k]->IsAncestorOrSelf(a, b), expected_anc)
          << schemes[k]->name() << " disagrees on ancestry for " << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossSchemeTest,
    ::testing::Values(ShapeCase{"caterpillar_50", 0, 50},
                      ShapeCase{"caterpillar_500", 0, 500},
                      ShapeCase{"balanced_6", 1, 6},
                      ShapeCase{"balanced_9", 1, 9},
                      ShapeCase{"random_100", 2, 100},
                      ShapeCase{"random_1000", 2, 1000},
                      ShapeCase{"paper_fig1", 3, 0}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.name;
    });

TEST(LabelFootprintTest, PaperClaimOnLabelSizes) {
  // Deep tree: plain Dewey labels grow linearly with depth, layered
  // stays flat -- the quantitative claim of §2.1, asserted as ordering.
  PhyloTree deep = MakeCaterpillar(2000);
  DeweyScheme dewey;
  LayeredDeweyScheme layered(8);
  IntervalScheme interval;
  ASSERT_TRUE(dewey.Build(deep).ok());
  ASSERT_TRUE(layered.Build(deep).ok());
  ASSERT_TRUE(interval.Build(deep).ok());
  EXPECT_GT(dewey.MaxLabelBytes(), 100 * layered.MaxLabelBytes());
  EXPECT_LT(layered.TotalLabelBytes(), interval.TotalLabelBytes() * 2);
}

}  // namespace
}  // namespace crimson
