// Cross-scheme agreement: every labeling scheme must answer LCA and
// ancestor queries identically on identical trees. This is the central
// correctness property behind the paper's performance comparison --
// schemes differ in cost, never in answers.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "labeling/dewey_scheme.h"
#include "labeling/interval_scheme.h"
#include "labeling/layered_dewey.h"
#include "query/clade.h"
#include "query/projection.h"
#include "sim/tree_sim.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

std::vector<std::unique_ptr<LabelingScheme>> AllSchemes() {
  std::vector<std::unique_ptr<LabelingScheme>> out;
  out.push_back(std::make_unique<DeweyScheme>());
  out.push_back(std::make_unique<LayeredDeweyScheme>(3));
  out.push_back(std::make_unique<LayeredDeweyScheme>(8));
  out.push_back(std::make_unique<IntervalScheme>());
  out.push_back(std::make_unique<NaiveScheme>());
  return out;
}

struct ShapeCase {
  const char* name;
  int kind;
  uint32_t size;
};

class CrossSchemeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(CrossSchemeTest, AllSchemesAgreeOnLcaAndAncestry) {
  const ShapeCase& c = GetParam();
  Rng rng(8000 + c.size);
  PhyloTree t;
  switch (c.kind) {
    case 0:
      t = MakeCaterpillar(c.size);
      break;
    case 1:
      t = MakeBalancedBinary(c.size);
      break;
    case 2:
      t = MakeRandomBinary(c.size, &rng);
      break;
    default:
      t = MakePaperFigure1Tree();
  }
  auto schemes = AllSchemes();
  for (auto& s : schemes) {
    ASSERT_TRUE(s->Build(t).ok()) << s->name();
    ASSERT_EQ(s->node_count(), t.size()) << s->name();
  }
  for (int i = 0; i < 800; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId expected = *schemes[0]->Lca(a, b);
    bool expected_anc = *schemes[0]->IsAncestorOrSelf(a, b);
    for (size_t k = 1; k < schemes.size(); ++k) {
      ASSERT_EQ(*schemes[k]->Lca(a, b), expected)
          << schemes[k]->name() << " disagrees on LCA(" << a << "," << b
          << ") for " << c.name;
      ASSERT_EQ(*schemes[k]->IsAncestorOrSelf(a, b), expected_anc)
          << schemes[k]->name() << " disagrees on ancestry for " << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossSchemeTest,
    ::testing::Values(ShapeCase{"caterpillar_50", 0, 50},
                      ShapeCase{"caterpillar_500", 0, 500},
                      ShapeCase{"balanced_6", 1, 6},
                      ShapeCase{"balanced_9", 1, 9},
                      ShapeCase{"random_100", 2, 100},
                      ShapeCase{"random_1000", 2, 1000},
                      ShapeCase{"paper_fig1", 3, 0}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Randomized differential testing on simulated phylogenies: every
// scheme must agree with every other on LCA, minimal spanning clade,
// and projection over seeded Yule / birth-death trees -- the workload
// regime the paper targets, not just hand-built shapes.
// ---------------------------------------------------------------------------

void RunDifferential(const PhyloTree& t, uint64_t seed, int lca_probes,
                     int clade_probes, int projection_probes,
                     const char* label) {
  auto schemes = AllSchemes();
  for (auto& s : schemes) {
    ASSERT_TRUE(s->Build(t).ok()) << s->name() << " on " << label;
  }
  std::vector<NodeId> leaves = t.Leaves();
  ASSERT_GE(leaves.size(), 3u);
  Rng rng(seed);

  for (int i = 0; i < lca_probes; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId expected = *schemes[0]->Lca(a, b);
    for (size_t k = 1; k < schemes.size(); ++k) {
      ASSERT_EQ(*schemes[k]->Lca(a, b), expected)
          << schemes[k]->name() << " disagrees on LCA(" << a << "," << b
          << ") for " << label;
    }
  }

  for (int i = 0; i < clade_probes; ++i) {
    size_t k_leaves = 2 + rng.Uniform(5);
    std::vector<NodeId> subset;
    for (size_t j = 0; j < k_leaves; ++j) {
      subset.push_back(leaves[rng.Uniform(leaves.size())]);
    }
    auto expected = MinimalSpanningClade(t, *schemes[0], subset);
    ASSERT_TRUE(expected.ok());
    for (size_t k = 1; k < schemes.size(); ++k) {
      auto got = MinimalSpanningClade(t, *schemes[k], subset);
      ASSERT_TRUE(got.ok()) << schemes[k]->name();
      ASSERT_EQ(got->root, expected->root)
          << schemes[k]->name() << " disagrees on clade root for " << label;
      ASSERT_EQ(got->nodes, expected->nodes)
          << schemes[k]->name() << " disagrees on clade nodes for " << label;
    }
  }

  std::vector<std::unique_ptr<TreeProjector>> projectors;
  for (auto& s : schemes) {
    projectors.push_back(std::make_unique<TreeProjector>(&t, s.get()));
  }
  for (int i = 0; i < projection_probes; ++i) {
    size_t k_leaves = 2 + rng.Uniform(12);
    std::vector<NodeId> subset;
    for (size_t j = 0; j < k_leaves; ++j) {
      subset.push_back(leaves[rng.Uniform(leaves.size())]);
    }
    auto expected = projectors[0]->Project(subset);
    ASSERT_TRUE(expected.ok());
    for (size_t k = 1; k < projectors.size(); ++k) {
      auto got = projectors[k]->Project(subset);
      ASSERT_TRUE(got.ok()) << schemes[k]->name();
      ASSERT_TRUE(PhyloTree::Equal(*expected, *got, 1e-9, /*ordered=*/true))
          << schemes[k]->name() << " disagrees on projection for " << label;
    }
  }
}

TEST(CrossSchemeRandomizedTest, YuleTreesDifferential) {
  Rng rng(0x9E1E);
  for (uint32_t n_leaves : {50u, 300u, 1000u}) {
    YuleOptions opts;
    opts.n_leaves = n_leaves;
    auto t = SimulateYule(opts, &rng);
    ASSERT_TRUE(t.ok());
    RunDifferential(*t, 0xD1FF + n_leaves, 300, 60, 60, "yule");
  }
}

TEST(CrossSchemeRandomizedTest, BirthDeathTreesDifferential) {
  Rng rng(0xB1D7);
  for (bool prune : {true, false}) {
    BirthDeathOptions opts;
    opts.n_leaves = 400;
    opts.death_rate = 0.4;
    opts.prune_extinct = prune;
    auto t = SimulateBirthDeath(opts, &rng);
    ASSERT_TRUE(t.ok());
    RunDifferential(*t, 0xBDBD + prune, 300, 60, 60,
                    prune ? "birth_death_pruned" : "birth_death_full");
  }
}

TEST(CrossSchemeRandomizedStressTest, LargeSimulatedTreesDifferential) {
  // Dialed-up sweep over bigger trees and more probes:
  // ctest -C stress -L stress.
  Rng rng(0x57E557);
  for (int rep = 0; rep < 3; ++rep) {
    YuleOptions yopts;
    yopts.n_leaves = 5000 + static_cast<uint32_t>(rng.Uniform(5000));
    auto yule = SimulateYule(yopts, &rng);
    ASSERT_TRUE(yule.ok());
    RunDifferential(*yule, rng.Next(), 2000, 300, 300, "yule_stress");

    BirthDeathOptions bopts;
    bopts.n_leaves = 2000;
    bopts.death_rate = 0.5;
    auto bd = SimulateBirthDeath(bopts, &rng);
    ASSERT_TRUE(bd.ok());
    RunDifferential(*bd, rng.Next(), 2000, 300, 300, "birth_death_stress");
  }
}

TEST(LabelFootprintTest, PaperClaimOnLabelSizes) {
  // Deep tree: plain Dewey labels grow linearly with depth, layered
  // stays flat -- the quantitative claim of §2.1, asserted as ordering.
  PhyloTree deep = MakeCaterpillar(2000);
  DeweyScheme dewey;
  LayeredDeweyScheme layered(8);
  IntervalScheme interval;
  ASSERT_TRUE(dewey.Build(deep).ok());
  ASSERT_TRUE(layered.Build(deep).ok());
  ASSERT_TRUE(interval.Build(deep).ok());
  EXPECT_GT(dewey.MaxLabelBytes(), 100 * layered.MaxLabelBytes());
  EXPECT_LT(layered.TotalLabelBytes(), interval.TotalLabelBytes() * 2);
}

}  // namespace
}  // namespace crimson
