#include "labeling/dewey_scheme.h"

#include <gtest/gtest.h>

#include "common/slice.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

TEST(DeweyLabelTest, BasicOperations) {
  DeweyLabel root;
  EXPECT_TRUE(root.empty());
  EXPECT_EQ(root.ToString(), "()");

  DeweyLabel l({2, 1, 1});
  EXPECT_EQ(l.depth(), 3u);
  EXPECT_EQ(l.ToString(), "2.1.1");
}

TEST(DeweyLabelTest, CommonPrefix) {
  DeweyLabel lla({2, 1, 1});
  DeweyLabel spy({2, 1, 2});
  // Paper §2.1: LCA(Lla, Spy) has label (2.1).
  EXPECT_EQ(lla.CommonPrefix(spy).ToString(), "2.1");
  EXPECT_EQ(lla.CommonPrefixLength(spy), 2u);
  DeweyLabel other({3});
  EXPECT_TRUE(lla.CommonPrefix(other).empty());
  EXPECT_EQ(lla.CommonPrefix(lla).ToString(), "2.1.1");
}

TEST(DeweyLabelTest, PrefixIsAncestry) {
  DeweyLabel anc({2, 1});
  DeweyLabel desc({2, 1, 1});
  EXPECT_TRUE(anc.IsPrefixOf(desc));
  EXPECT_TRUE(anc.IsPrefixOf(anc));
  EXPECT_FALSE(desc.IsPrefixOf(anc));
  EXPECT_TRUE(DeweyLabel().IsPrefixOf(desc));  // root above everything
  EXPECT_FALSE(DeweyLabel({2, 2}).IsPrefixOf(desc));
}

TEST(DeweyLabelTest, DocumentOrderCompare) {
  EXPECT_LT(DeweyLabel({1}).Compare(DeweyLabel({2})), 0);
  EXPECT_LT(DeweyLabel({2}).Compare(DeweyLabel({2, 1})), 0);
  EXPECT_EQ(DeweyLabel({2, 1}).Compare(DeweyLabel({2, 1})), 0);
  EXPECT_GT(DeweyLabel({2, 1, 2}).Compare(DeweyLabel({2, 1, 1})), 0);
}

TEST(DeweyLabelTest, EncodeDecodeRoundTrip) {
  DeweyLabel l({1, 300, 70000, 2});
  std::string buf;
  l.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), l.EncodedBytes());
  Slice in(buf);
  auto decoded = DeweyLabel::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == l);
  EXPECT_TRUE(in.empty());
}

TEST(DeweyLabelTest, DecodeTruncatedFails) {
  DeweyLabel l({1, 2, 3});
  std::string buf;
  l.EncodeTo(&buf);
  Slice in(buf.data(), buf.size() - 1);
  EXPECT_FALSE(DeweyLabel::DecodeFrom(&in).ok());
}

class DeweySchemeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    ASSERT_TRUE(scheme_.Build(tree_).ok());
  }
  PhyloTree tree_;
  DeweyScheme scheme_;
};

TEST_F(DeweySchemeTest, PaperExampleLabels) {
  // "the label of the leaf node Lla in Figure 1 would be (2.1.1), and
  //  that of Spy would be (2.1.2)"
  EXPECT_EQ(scheme_.label(tree_.FindByName("Lla")).ToString(), "2.1.1");
  EXPECT_EQ(scheme_.label(tree_.FindByName("Spy")).ToString(), "2.1.2");
  EXPECT_EQ(scheme_.label(tree_.root()).ToString(), "()");
  EXPECT_EQ(scheme_.label(tree_.FindByName("Syn")).ToString(), "1");
  EXPECT_EQ(scheme_.label(tree_.FindByName("Bsu")).ToString(), "3");
}

TEST_F(DeweySchemeTest, PaperExampleLca) {
  // "the least common ancestor of Lla and Spy ... the (interior) node
  //  with label (2.1)"
  NodeId lla = tree_.FindByName("Lla");
  NodeId spy = tree_.FindByName("Spy");
  auto lca = scheme_.Lca(lla, spy);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(scheme_.label(*lca).ToString(), "2.1");
  EXPECT_EQ(*lca, tree_.parent(lla));
}

TEST_F(DeweySchemeTest, NodeForLabelInvertsLabeling) {
  for (NodeId n = 0; n < tree_.size(); ++n) {
    EXPECT_EQ(scheme_.NodeForLabel(scheme_.label(n)), n);
  }
  EXPECT_EQ(scheme_.NodeForLabel(DeweyLabel({9, 9})), kNoNode);
}

TEST_F(DeweySchemeTest, AncestorChecks) {
  NodeId lla = tree_.FindByName("Lla");
  EXPECT_TRUE(*scheme_.IsAncestorOrSelf(tree_.root(), lla));
  EXPECT_TRUE(*scheme_.IsAncestorOrSelf(lla, lla));
  EXPECT_FALSE(*scheme_.IsAncestorOrSelf(lla, tree_.root()));
  EXPECT_FALSE(*scheme_.IsAncestorOrSelf(tree_.FindByName("Bsu"), lla));
}

TEST_F(DeweySchemeTest, OutOfRangeRejected) {
  EXPECT_FALSE(scheme_.Lca(0, 999).ok());
  EXPECT_FALSE(scheme_.IsAncestorOrSelf(999, 0).ok());
}

TEST(DeweySchemeDeepTest, LabelBytesGrowWithDepth) {
  // The paper's core complaint: Dewey label size is proportional to
  // node depth.
  DeweyScheme shallow, deep;
  PhyloTree t1 = MakeCaterpillar(10);
  PhyloTree t2 = MakeCaterpillar(1000);
  ASSERT_TRUE(shallow.Build(t1).ok());
  ASSERT_TRUE(deep.Build(t2).ok());
  EXPECT_GT(deep.MaxLabelBytes(), 50 * shallow.MaxLabelBytes() / 10);
  EXPECT_GE(deep.MaxLabelBytes(), 1000u);  // >= one byte per level
}

TEST(DeweySchemeDeepTest, AgreesWithNaiveLcaOnRandomTrees) {
  Rng rng(21);
  PhyloTree t = MakeRandomBinary(300, &rng);
  DeweyScheme scheme;
  ASSERT_TRUE(scheme.Build(t).ok());
  for (int i = 0; i < 2000; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    ASSERT_EQ(*scheme.Lca(a, b), t.NaiveLca(a, b));
  }
}

TEST(DeweySchemeDeepTest, NotBuiltFailsGracefully) {
  DeweyScheme scheme;
  EXPECT_TRUE(scheme.Lca(0, 0).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace crimson
