#include "labeling/interval_scheme.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

class IntervalSchemeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    ASSERT_TRUE(scheme_.Build(tree_).ok());
  }
  PhyloTree tree_;
  IntervalScheme scheme_;
};

TEST_F(IntervalSchemeTest, PreOrderRanksAreIntervals) {
  EXPECT_EQ(scheme_.pre(tree_.root()), 0u);
  EXPECT_EQ(scheme_.max_descendant_pre(tree_.root()), tree_.size() - 1);
  for (NodeId n = 0; n < tree_.size(); ++n) {
    EXPECT_LE(scheme_.pre(n), scheme_.max_descendant_pre(n));
    if (tree_.is_leaf(n)) {
      EXPECT_EQ(scheme_.pre(n), scheme_.max_descendant_pre(n));
    }
  }
}

TEST_F(IntervalSchemeTest, AncestorChecks) {
  NodeId lla = tree_.FindByName("Lla");
  NodeId x = tree_.parent(lla);
  EXPECT_TRUE(*scheme_.IsAncestorOrSelf(tree_.root(), lla));
  EXPECT_TRUE(*scheme_.IsAncestorOrSelf(x, lla));
  EXPECT_TRUE(*scheme_.IsAncestorOrSelf(lla, lla));
  EXPECT_FALSE(*scheme_.IsAncestorOrSelf(lla, x));
  EXPECT_FALSE(*scheme_.IsAncestorOrSelf(tree_.FindByName("Syn"), lla));
}

TEST_F(IntervalSchemeTest, LcaByClimbing) {
  NodeId lla = tree_.FindByName("Lla");
  NodeId spy = tree_.FindByName("Spy");
  NodeId syn = tree_.FindByName("Syn");
  EXPECT_EQ(*scheme_.Lca(lla, spy), tree_.parent(lla));
  EXPECT_EQ(*scheme_.Lca(lla, syn), tree_.root());
  EXPECT_EQ(*scheme_.Lca(lla, lla), lla);
}

TEST(IntervalSchemeRandomTest, AgreesWithNaive) {
  Rng rng(31);
  PhyloTree t = MakeRandomBinary(300, &rng);
  IntervalScheme scheme;
  ASSERT_TRUE(scheme.Build(t).ok());
  for (int i = 0; i < 1500; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    ASSERT_EQ(*scheme.Lca(a, b), t.NaiveLca(a, b));
    ASSERT_EQ(*scheme.IsAncestorOrSelf(a, b), t.IsAncestorOrSelf(a, b));
  }
}

TEST(IntervalSchemeTest2, FixedLabelBytes) {
  PhyloTree deep = MakeCaterpillar(1000);
  IntervalScheme scheme;
  ASSERT_TRUE(scheme.Build(deep).ok());
  // Interval labels are depth-independent (two fixed32 words)...
  EXPECT_EQ(scheme.MaxLabelBytes(), 8u);
  // ...but LCA still requires O(depth) climbing; correctness only here,
  // the cost shows up in bench_lca.
  NodeId a = deep.FindByName("L999");
  NodeId b = deep.FindByName("L0");
  EXPECT_EQ(*scheme.Lca(a, b), deep.parent(b));
}

TEST(NaiveSchemeTest, MatchesTreeHelpers) {
  Rng rng(33);
  PhyloTree t = MakeRandomBinary(200, &rng);
  NaiveScheme scheme;
  ASSERT_TRUE(scheme.Build(t).ok());
  EXPECT_EQ(scheme.LabelBytes(0), 0u);
  for (int i = 0; i < 500; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    ASSERT_EQ(*scheme.Lca(a, b), t.NaiveLca(a, b));
    ASSERT_EQ(*scheme.IsAncestorOrSelf(a, b), t.IsAncestorOrSelf(a, b));
  }
}

}  // namespace
}  // namespace crimson
