#include "labeling/layered_dewey.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/slice.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

// Golden tests for the paper's Figure 4: the sample tree decomposed
// with f=3 splits into layer-0 subtrees {root,Syn,P,Bha,Bsu} and
// {x,Lla,Spy}, with P the source node of the split-off subtree.
class Figure4Test : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    scheme_ = std::make_unique<LayeredDeweyScheme>(3);
    ASSERT_TRUE(scheme_->Build(tree_).ok());
    lla_ = tree_.FindByName("Lla");
    spy_ = tree_.FindByName("Spy");
    syn_ = tree_.FindByName("Syn");
    bha_ = tree_.FindByName("Bha");
    bsu_ = tree_.FindByName("Bsu");
    x_ = tree_.parent(lla_);
    p_ = tree_.parent(x_);
  }

  PhyloTree tree_;
  std::unique_ptr<LayeredDeweyScheme> scheme_;
  NodeId lla_, spy_, syn_, bha_, bsu_, x_, p_;
};

TEST_F(Figure4Test, TwoLayerZeroSubtrees) {
  EXPECT_EQ(scheme_->NumSubtrees(0), 2u);
  // Subtree 0: root, Syn, P, Bha, Bsu.
  EXPECT_EQ(scheme_->SubtreeOf(tree_.root()), 0u);
  EXPECT_EQ(scheme_->SubtreeOf(syn_), 0u);
  EXPECT_EQ(scheme_->SubtreeOf(p_), 0u);
  EXPECT_EQ(scheme_->SubtreeOf(bha_), 0u);
  EXPECT_EQ(scheme_->SubtreeOf(bsu_), 0u);
  // Subtree 1: x, Lla, Spy (split off at x).
  EXPECT_EQ(scheme_->SubtreeOf(x_), 1u);
  EXPECT_EQ(scheme_->SubtreeOf(lla_), 1u);
  EXPECT_EQ(scheme_->SubtreeOf(spy_), 1u);
}

TEST_F(Figure4Test, SourceNodeIsP) {
  // "node 3 the source node of node 6": subtree 1 was split off from P.
  EXPECT_EQ(scheme_->SourceOfSubtree(1), p_);
  EXPECT_EQ(scheme_->SourceOfSubtree(0), kNoNode);
}

TEST_F(Figure4Test, TwoLayersTotal) {
  // Layer 1 has one subtree containing both items, so recursion stops.
  EXPECT_EQ(scheme_->num_layers(), 2u);
  EXPECT_EQ(scheme_->NumSubtrees(1), 1u);
}

TEST_F(Figure4Test, LocalLabelsBoundedByF) {
  for (NodeId n = 0; n < tree_.size(); ++n) {
    EXPECT_LT(scheme_->LocalDepth(n), 3u);
    EXPECT_EQ(scheme_->LocalLabel(n).depth(), scheme_->LocalDepth(n));
  }
  // x is a subtree root: local label empty.
  EXPECT_TRUE(scheme_->LocalLabel(x_).empty());
  EXPECT_EQ(scheme_->LocalLabel(lla_).ToString(), "1");
  EXPECT_EQ(scheme_->LocalLabel(spy_).ToString(), "2");
}

TEST_F(Figure4Test, PaperLcaWalkthrough) {
  // "the LCA of Lla and Syn ... is node 1" (the root).
  EXPECT_EQ(*scheme_->Lca(lla_, syn_), tree_.root());
  // Within one subtree: LCA(Lla, Spy) = x.
  EXPECT_EQ(*scheme_->Lca(lla_, spy_), x_);
  // Cross-subtree with non-root answer: LCA(Lla, Bha) = P.
  EXPECT_EQ(*scheme_->Lca(lla_, bha_), p_);
  // Self and ancestor cases.
  EXPECT_EQ(*scheme_->Lca(lla_, lla_), lla_);
  EXPECT_EQ(*scheme_->Lca(lla_, x_), x_);
  EXPECT_EQ(*scheme_->Lca(p_, lla_), p_);
}

TEST_F(Figure4Test, AncestorOrSelf) {
  EXPECT_TRUE(*scheme_->IsAncestorOrSelf(tree_.root(), lla_));
  EXPECT_TRUE(*scheme_->IsAncestorOrSelf(p_, lla_));
  EXPECT_TRUE(*scheme_->IsAncestorOrSelf(x_, spy_));
  EXPECT_FALSE(*scheme_->IsAncestorOrSelf(syn_, lla_));
  EXPECT_FALSE(*scheme_->IsAncestorOrSelf(lla_, spy_));
}

TEST(LayeredDeweyTest, DeepCaterpillarHasManyLayersButTinyLabels) {
  const uint32_t kDepth = 100000;
  PhyloTree t = MakeCaterpillar(kDepth);
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(t).ok());
  EXPECT_GT(scheme.num_layers(), 3u);
  // Label sizes stay bounded by f regardless of the 100k depth: at most
  // f-1 varint components plus subtree id and length.
  for (NodeId n = 0; n < t.size(); n += 997) {
    EXPECT_LT(scheme.LocalDepth(n), 8u);
  }
  EXPECT_LE(scheme.MaxLabelBytes(), 7u + 5u + 1u);
}

TEST(LayeredDeweyTest, LcaOnDeepChainIsCorrectAndCheap) {
  const uint32_t kDepth = 50000;
  PhyloTree t = MakeCaterpillar(kDepth);
  LayeredDeweyScheme scheme(16);
  ASSERT_TRUE(scheme.Build(t).ok());
  // Leaves at depth d hang off the chain; LCA of two leaves is the
  // chain node at the shallower depth.
  NodeId deep_leaf = t.FindByName("L49999");
  NodeId mid_leaf = t.FindByName("L25000");
  NodeId lca = *scheme.Lca(deep_leaf, mid_leaf);
  EXPECT_EQ(lca, t.parent(mid_leaf));
  EXPECT_EQ(*scheme.Lca(deep_leaf, deep_leaf), deep_leaf);
}

class LayeredDeweyPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {};

TEST_P(LayeredDeweyPropertyTest, AgreesWithNaiveLcaEverywhere) {
  auto [f, shape] = GetParam();
  Rng rng(1000 + f + static_cast<uint64_t>(shape) * 31);
  PhyloTree t;
  switch (shape) {
    case 0:
      t = MakeCaterpillar(200);
      break;
    case 1:
      t = MakeBalancedBinary(7);
      break;
    default:
      t = MakeRandomBinary(250, &rng);
  }
  LayeredDeweyScheme scheme(f);
  ASSERT_TRUE(scheme.Build(t).ok());
  // Local depth bound holds for every node.
  for (NodeId n = 0; n < t.size(); ++n) {
    ASSERT_LT(scheme.LocalDepth(n), f);
  }
  // LCA agreement on random pairs.
  for (int i = 0; i < 1500; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    ASSERT_EQ(*scheme.Lca(a, b), t.NaiveLca(a, b))
        << "f=" << f << " shape=" << shape << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayeredDeweyPropertyTest,
    ::testing::Combine(::testing::Values(3u, 4u, 5u, 8u, 16u, 64u),
                       ::testing::Values(0, 1, 2)));

TEST(LayeredDeweySerializationTest, EncodeDecodeRoundTrip) {
  Rng rng(0x5E51A);
  PhyloTree t = MakeRandomBinary(800, &rng);
  LayeredDeweyScheme built(5);
  ASSERT_TRUE(built.Build(t).ok());
  std::string blob;
  built.EncodeTo(&blob);

  LayeredDeweyScheme decoded;
  ASSERT_TRUE(decoded.DecodeFrom(Slice(blob)).ok());
  EXPECT_EQ(decoded.f(), built.f());
  EXPECT_EQ(decoded.node_count(), built.node_count());
  EXPECT_EQ(decoded.num_layers(), built.num_layers());
  // Canonical encoding: re-encoding reproduces the bytes.
  std::string reencoded;
  decoded.EncodeTo(&reencoded);
  EXPECT_EQ(reencoded, blob);
  for (int i = 0; i < 300; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    EXPECT_EQ(*decoded.Lca(a, b), *built.Lca(a, b));
  }
}

TEST(LayeredDeweySerializationTest, MalformedBlobsRejected) {
  PhyloTree t = MakeCaterpillar(200);
  LayeredDeweyScheme built(4);
  ASSERT_TRUE(built.Build(t).ok());
  std::string blob;
  built.EncodeTo(&blob);

  LayeredDeweyScheme decoded;
  EXPECT_TRUE(decoded.DecodeFrom(Slice("")).IsCorruption());
  EXPECT_TRUE(decoded.DecodeFrom(Slice("garbage")).IsCorruption());
  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < blob.size(); len += 7) {
    EXPECT_TRUE(decoded.DecodeFrom(Slice(blob.data(), len)).IsCorruption())
        << "prefix " << len;
  }
  // Trailing bytes rejected.
  std::string padded = blob + "x";
  EXPECT_TRUE(decoded.DecodeFrom(Slice(padded)).IsCorruption());
  // Value corruption (bit flips) must either fail decode or at least
  // never produce out-of-range structures; the scheme still built from
  // the pristine blob afterwards.
  Rng rng(0xC0FF);
  for (int rep = 0; rep < 64; ++rep) {
    std::string mangled = blob;
    mangled[rng.Uniform(mangled.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    LayeredDeweyScheme victim;
    Status s = victim.DecodeFrom(Slice(mangled));
    if (s.ok()) {
      // Rare: the flip produced another structurally valid scheme;
      // queries must still stay in bounds (ASan/UBSan guard this).
      (void)victim.Lca(0, static_cast<NodeId>(victim.node_count() - 1));
    }
  }
  LayeredDeweyScheme pristine;
  EXPECT_TRUE(pristine.DecodeFrom(Slice(blob)).ok());
}

TEST(LayeredDeweyTest, SingleNodeTree) {
  PhyloTree t;
  t.AddRoot("only");
  LayeredDeweyScheme scheme(4);
  ASSERT_TRUE(scheme.Build(t).ok());
  EXPECT_EQ(scheme.num_layers(), 1u);
  EXPECT_EQ(*scheme.Lca(0, 0), 0u);
}

TEST(LayeredDeweyTest, ShallowTreeStaysSingleLayer) {
  PhyloTree t = MakeBalancedBinary(3);  // depth 3 < f=8
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(t).ok());
  EXPECT_EQ(scheme.num_layers(), 1u);
  EXPECT_EQ(scheme.NumSubtrees(0), 1u);
}

TEST(LayeredDeweyTest, SmallFClampedToThree) {
  // f < 3 cannot converge (see the constructor comment); it is clamped.
  LayeredDeweyScheme scheme0(0);
  EXPECT_EQ(scheme0.f(), 3u);
  LayeredDeweyScheme scheme2(2);
  EXPECT_EQ(scheme2.f(), 3u);
}

TEST(LayeredDeweyTest, NotBuiltFailsGracefully) {
  LayeredDeweyScheme scheme(4);
  EXPECT_TRUE(scheme.Lca(0, 0).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace crimson

namespace crimson {
namespace {

// Regression tests for the layer-recursive climb (ClimbIntoSubtree /
// ChildOfAncestor): cross-subtree LCA must stay correct when the two
// nodes are separated by many layers, and must not cost O(depth/f).

TEST(LayeredDeweyClimbTest, VeryDeepCrossSubtreeLcaExactness) {
  const uint32_t kDepth = 300000;
  PhyloTree t = MakeCaterpillar(kDepth);
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(t).ok());
  ASSERT_GT(scheme.num_layers(), 4u);
  Rng rng(5150);
  for (int i = 0; i < 300; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    ASSERT_EQ(*scheme.Lca(a, b), t.NaiveLca(a, b)) << a << "," << b;
  }
}

TEST(LayeredDeweyClimbTest, AdversarialPairsAcrossLayerBoundaries) {
  // Pairs straddling subtree boundaries at every layer: node k*f-1 vs
  // k*f (the last in one subtree and the first of the next).
  const uint32_t kDepth = 10000;
  const uint32_t f = 8;
  PhyloTree t = MakeCaterpillar(kDepth);
  LayeredDeweyScheme scheme(f);
  ASSERT_TRUE(scheme.Build(t).ok());
  // Chain nodes in a caterpillar: the internal spine. Walk it and test
  // each boundary pair plus long-range pairs against the root subtree.
  std::vector<NodeId> spine;
  NodeId cur = t.root();
  while (!t.is_leaf(cur)) {
    spine.push_back(cur);
    // second child is the next spine node.
    NodeId c = t.first_child(cur);
    c = t.next_sibling(c);
    if (c == kNoNode) break;
    cur = c;
  }
  for (size_t i = f - 2; i + 1 < spine.size(); i += f - 1) {
    NodeId shallow = spine[i];
    NodeId deep = spine[i + 1];
    EXPECT_EQ(*scheme.Lca(shallow, deep), shallow);
    EXPECT_TRUE(*scheme.IsAncestorOrSelf(shallow, deep));
    EXPECT_FALSE(*scheme.IsAncestorOrSelf(deep, shallow));
  }
  // Deepest leaf against every 500th spine node.
  NodeId deepest = spine.back();
  for (size_t i = 0; i < spine.size(); i += 500) {
    EXPECT_EQ(*scheme.Lca(spine[i], deepest), spine[i]);
  }
}

TEST(LayeredDeweyClimbTest, BushyDeepHybridTree) {
  // A tree that is both deep and bushy: a deep spine with a balanced
  // bush hanging off every 50th spine node. Exercises climbs whose
  // entry points are mid-subtree.
  PhyloTree t;
  NodeId cur = t.AddRoot("");
  std::vector<NodeId> bush_roots;
  for (int d = 0; d < 2000; ++d) {
    if (d % 50 == 0) bush_roots.push_back(t.AddChild(cur, "", 1.0));
    cur = t.AddChild(cur, "", 1.0);
  }
  for (NodeId b : bush_roots) {
    std::vector<NodeId> frontier = {b};
    for (int lvl = 0; lvl < 3; ++lvl) {
      std::vector<NodeId> next;
      for (NodeId n : frontier) {
        next.push_back(t.AddChild(n, "", 1.0));
        next.push_back(t.AddChild(n, "", 1.0));
      }
      frontier = std::move(next);
    }
  }
  ASSERT_TRUE(t.Validate().ok());
  LayeredDeweyScheme scheme(4);
  ASSERT_TRUE(scheme.Build(t).ok());
  Rng rng(62);
  for (int i = 0; i < 2000; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(t.size()));
    NodeId b = static_cast<NodeId>(rng.Uniform(t.size()));
    ASSERT_EQ(*scheme.Lca(a, b), t.NaiveLca(a, b));
  }
}

}  // namespace
}  // namespace crimson
