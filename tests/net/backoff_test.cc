// Retry-backoff policy tests: ComputeRetryBackoffMs is a pure
// function of (options, attempt, server hint), so every property the
// client doc promises -- determinism for a fixed seed, capped
// exponential growth, equal-jitter bounds, the server hint acting as
// an additive floor, and schedule divergence across seeds -- is
// checkable without a socket.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "net/client.h"

namespace crimson {
namespace net {
namespace {

ClientOptions Options(uint64_t seed, int64_t base_ms = 10,
                      int64_t max_ms = 2000) {
  ClientOptions options;
  options.retry_jitter_seed = seed;
  options.retry_base_ms = base_ms;
  options.retry_max_ms = max_ms;
  return options;
}

TEST(RetryBackoffTest, DeterministicForFixedSeed) {
  ClientOptions options = Options(0xC0FFEE);
  for (int attempt = 0; attempt < 8; ++attempt) {
    int64_t first = ComputeRetryBackoffMs(options, attempt, 0);
    int64_t second = ComputeRetryBackoffMs(options, attempt, 0);
    EXPECT_EQ(first, second) << "attempt " << attempt;
  }
}

TEST(RetryBackoffTest, StaysWithinEqualJitterEnvelope) {
  // Equal jitter keeps each delay in [exp/2, exp] where exp is the
  // capped exponential for that attempt. Check the envelope across
  // many seeds so a broken jitter term can't hide behind one draw.
  const int64_t base = 16;
  const int64_t cap = 1024;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    ClientOptions options = Options(seed, base, cap);
    int64_t exp = base;
    for (int attempt = 0; attempt < 10; ++attempt) {
      int64_t delay = ComputeRetryBackoffMs(options, attempt, 0);
      EXPECT_GE(delay, exp / 2) << "seed " << seed << " attempt " << attempt;
      EXPECT_LE(delay, exp) << "seed " << seed << " attempt " << attempt;
      if (exp < cap) exp = std::min<int64_t>(exp * 2, cap);
    }
  }
}

TEST(RetryBackoffTest, GrowsExponentiallyThenClampsAtCap) {
  ClientOptions options = Options(7, /*base_ms=*/10, /*max_ms=*/200);
  // Upper bound of the jitter envelope doubles per attempt: 10, 20,
  // 40, 80, 160, then clamps at 200 forever.
  const int64_t expected_upper[] = {10, 20, 40, 80, 160, 200, 200, 200};
  for (int attempt = 0; attempt < 8; ++attempt) {
    int64_t delay = ComputeRetryBackoffMs(options, attempt, 0);
    EXPECT_LE(delay, expected_upper[attempt]) << "attempt " << attempt;
    EXPECT_GE(delay, expected_upper[attempt] / 2) << "attempt " << attempt;
  }
}

TEST(RetryBackoffTest, ServerHintIsAnAdditiveFloor) {
  ClientOptions options = Options(99);
  for (int attempt = 0; attempt < 6; ++attempt) {
    int64_t without = ComputeRetryBackoffMs(options, attempt, 0);
    int64_t with = ComputeRetryBackoffMs(options, attempt, 500);
    EXPECT_EQ(with, without + 500) << "attempt " << attempt;
    EXPECT_GE(with, 500);
  }
  // Negative / absent hints are ignored, never subtracted.
  EXPECT_EQ(ComputeRetryBackoffMs(options, 2, -25),
            ComputeRetryBackoffMs(options, 2, 0));
}

TEST(RetryBackoffTest, AlwaysAtLeastOneMillisecond) {
  // Degenerate configs (zero/negative base, inverted cap) still yield
  // a sane positive delay instead of a busy retry loop.
  EXPECT_GE(ComputeRetryBackoffMs(Options(1, 0, 0), 0, 0), 1);
  EXPECT_GE(ComputeRetryBackoffMs(Options(1, -5, -5), 3, 0), 1);
  EXPECT_GE(ComputeRetryBackoffMs(Options(1, 100, 1), 5, 0), 1);
}

TEST(RetryBackoffTest, DifferentSeedsDecorrelateSchedules) {
  // Two clients hammering the same recovering server should not sleep
  // in lockstep. With a wide-enough envelope the full retry schedules
  // almost surely differ across seeds.
  std::set<std::vector<int64_t>> schedules;
  const int kSeeds = 32;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ClientOptions options = Options(seed, /*base_ms=*/256, /*max_ms=*/4096);
    std::vector<int64_t> schedule;
    for (int attempt = 0; attempt < 6; ++attempt) {
      schedule.push_back(ComputeRetryBackoffMs(options, attempt, 0));
    }
    schedules.insert(schedule);
  }
  // Allow a stray collision, but lockstep would collapse to 1.
  EXPECT_GE(schedules.size(), static_cast<size_t>(kSeeds - 2));
}

}  // namespace
}  // namespace net
}  // namespace crimson
