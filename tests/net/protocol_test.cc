// Wire protocol tests: frame encode/decode (including incremental
// feeds and torn frames), hostile-input robustness (bad magic, bad
// version, oversized, CRC mismatch, truncation, random fuzz), and
// byte-identical round-trips for every typed payload codec -- all six
// QueryRequest kinds, all five QueryResult kinds, trees, metadata,
// history entries, and the error payload across every status code.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "common/status.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace crimson {
namespace net {
namespace {

std::string EncodeFrameBytes(MessageType type, const std::string& payload) {
  std::string out;
  AppendFrame(&out, type, payload);
  return out;
}

// -- framing ----------------------------------------------------------------

TEST(FrameTest, RoundTripsTypeAndPayload) {
  std::string wire = EncodeFrameBytes(MessageType::kPing, "hello frame");
  EXPECT_EQ(wire.size(), kFrameHeaderSize + 11);

  Slice in(wire);
  Frame frame;
  std::string error;
  ASSERT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kFrame) << error;
  EXPECT_EQ(frame.type, MessageType::kPing);
  EXPECT_EQ(frame.payload, "hello frame");
  EXPECT_TRUE(in.empty());
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  std::string wire = EncodeFrameBytes(MessageType::kCheckpoint, "");
  Slice in(wire);
  Frame frame;
  std::string error;
  ASSERT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kFrame);
  EXPECT_EQ(frame.type, MessageType::kCheckpoint);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, IncrementalFeedNeedsMoreUntilComplete) {
  std::string wire = EncodeFrameBytes(MessageType::kQuery, "payload bytes");
  // Every strict prefix must report kNeedMore and consume nothing.
  for (size_t n = 0; n < wire.size(); ++n) {
    Slice in(wire.data(), n);
    Frame frame;
    std::string error;
    EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kNeedMore)
        << "prefix of " << n << " bytes";
    EXPECT_EQ(in.size(), n) << "kNeedMore must not consume";
  }
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  std::string wire;
  AppendFrame(&wire, MessageType::kPing, "one");
  AppendFrame(&wire, MessageType::kQuery, "two");
  AppendFrame(&wire, MessageType::kHistory, "");

  Slice in(wire);
  Frame frame;
  std::string error;
  ASSERT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kFrame);
  EXPECT_EQ(frame.payload, "one");
  ASSERT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kFrame);
  EXPECT_EQ(frame.payload, "two");
  ASSERT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kFrame);
  EXPECT_EQ(frame.type, MessageType::kHistory);
  EXPECT_TRUE(in.empty());
}

TEST(FrameTest, BadMagicIsRejected) {
  std::string wire = EncodeFrameBytes(MessageType::kPing, "x");
  wire[0] ^= 0x40;
  Slice in(wire);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kBad);
  EXPECT_FALSE(error.empty());
}

TEST(FrameTest, FutureVersionIsRejected) {
  std::string wire = EncodeFrameBytes(MessageType::kPing, "x");
  wire[2] = static_cast<char>(kProtocolVersion + 1);
  Slice in(wire);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kBad);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(FrameTest, OversizedLengthIsRejectedBeforeBuffering) {
  // A header whose declared payload exceeds the cap must be rejected
  // immediately even though none of the payload bytes are present --
  // otherwise a 4GiB length would make the server buffer forever.
  std::string wire;
  PutFixed16(&wire, kFrameMagic);
  wire.push_back(static_cast<char>(kProtocolVersion));
  wire.push_back(static_cast<char>(MessageType::kPing));
  PutFixed32(&wire, kMaxPayloadBytes + 1);
  PutFixed32(&wire, 0);  // crc (never checked: length fails first)
  Slice in(wire);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kBad);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(FrameTest, ServerConfiguredLowerCapApplies) {
  std::string wire = EncodeFrameBytes(MessageType::kPing, std::string(128, 'p'));
  Slice in(wire);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error, /*max_payload=*/64),
            FrameDecode::kBad);
}

TEST(FrameTest, CorruptPayloadFailsCrc) {
  std::string wire = EncodeFrameBytes(MessageType::kQuery, "checksummed");
  wire[kFrameHeaderSize + 3] ^= 0x01;  // flip one payload bit
  Slice in(wire);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kBad);
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(FrameTest, CorruptHeaderCrcFieldFailsCrc) {
  std::string wire = EncodeFrameBytes(MessageType::kQuery, "checksummed");
  wire[8] ^= 0x01;  // flip a bit of the stored crc itself
  Slice in(wire);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kBad);
}

TEST(FrameTest, TornFrameIsJustNeedMore) {
  // A frame cut mid-payload (as a crashed peer would leave it) is not
  // corruption -- the reader waits for the rest or sees EOF.
  std::string wire = EncodeFrameBytes(MessageType::kStoreTree,
                                      std::string(1000, 't'));
  Slice in(wire.data(), wire.size() - 400);
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(&in, &frame, &error), FrameDecode::kNeedMore);
}

// -- fuzzing ----------------------------------------------------------------

void FuzzDecoderNeverCrashes(uint64_t seed, int iterations) {
  Rng rng(seed);
  std::string valid = EncodeFrameBytes(MessageType::kQuery, "fuzz seed corpus");
  for (int i = 0; i < iterations; ++i) {
    std::string input;
    if (rng.OneIn(2)) {
      // Mutated valid frame: flip 1-8 random bytes.
      input = valid;
      size_t flips = 1 + rng.Uniform(8);
      for (size_t f = 0; f < flips; ++f) {
        input[rng.Uniform(input.size())] ^=
            static_cast<char>(1 + rng.Uniform(255));
      }
    } else {
      // Pure noise of random length (including header-sized prefixes).
      input.resize(rng.Uniform(64));
      for (auto& c : input) c = static_cast<char>(rng.Next());
    }
    Slice in(input);
    Frame frame;
    std::string error;
    // Drain as a connection loop would: stop on kBad or kNeedMore.
    while (DecodeFrame(&in, &frame, &error) == FrameDecode::kFrame) {
      // Feed every frame that survives framing to every payload
      // decoder; none may crash on arbitrary CRC-valid bytes.
      Slice p1(frame.payload);
      (void)DecodeQueryEnvelope(&p1);
      Slice p2(frame.payload);
      (void)DecodeQueryResultWire(&p2);
      Slice p3(frame.payload);
      (void)DecodeTree(&p3);
      Slice p4(frame.payload);
      (void)DecodeStoreTreeRequest(&p4);
      Slice p5(frame.payload);
      (void)DecodeTreeInfoList(&p5);
      Slice p6(frame.payload);
      (void)DecodeHistoryEntries(&p6);
      Slice p7(frame.payload);
      Status decoded;
      (void)DecodeStatusPayload(&p7, &decoded);
    }
  }
}

TEST(FrameFuzzTest, RandomizedInputsNeverCrash) {
  FuzzDecoderNeverCrashes(/*seed=*/20260807, /*iterations=*/2000);
}

TEST(FrameFuzzTest, StressRandomizedInputsNeverCrash) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    FuzzDecoderNeverCrashes(seed, /*iterations=*/20000);
  }
}

TEST(PayloadFuzzTest, TruncatedValidPayloadsFailCleanly) {
  // Every strict prefix of a valid payload must decode to a typed
  // error, not a crash and not a bogus success that read past the end.
  std::string payload;
  EncodeQueryEnvelope(&payload,
                      {"a_tree", QueryRequest(ProjectQuery{{"a", "b", "c"}})});
  for (size_t n = 0; n < payload.size(); ++n) {
    Slice in(payload.data(), n);
    auto r = DecodeQueryEnvelope(&in);
    if (r.ok()) {
      // A prefix may decode successfully only by consuming everything
      // it was given (e.g. shorter species lists): re-encoding must
      // reproduce exactly those bytes.
      std::string again;
      EncodeQueryEnvelope(&again, *r);
      EXPECT_EQ(again, std::string(payload.data(), n));
    } else {
      EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
    }
  }
}

TEST(PayloadFuzzTest, HostileNodeCountDoesNotAllocate) {
  // A tree payload claiming 2^31 nodes in 6 bytes must be rejected by
  // the plausibility bound, not die trying to reserve the arena.
  std::string payload;
  PutVarint64(&payload, 1u << 31);
  payload += "xx";
  Slice in(payload);
  auto r = DecodeTree(&in);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

// -- typed payload round-trips ----------------------------------------------
//
// Encode -> decode -> re-encode must reproduce the original bytes
// exactly; this is the property the loopback tests lean on.

TEST(QueryCodecTest, EveryRequestKindRoundTripsByteIdentically) {
  const std::vector<QueryRequest> kAll = {
      QueryRequest(LcaQuery{"Lla", "Spy"}),
      QueryRequest(ProjectQuery{{"Bha", "Lla", "Syn"}}),
      QueryRequest(SampleUniformQuery{7}),
      QueryRequest(SampleTimeQuery{4, 1.25}),
      QueryRequest(CladeQuery{{"Lla", "Spy", "Bsu"}}),
      QueryRequest(PatternQuery{"((a,b),c);", true}),
  };
  for (const auto& request : kAll) {
    std::string bytes;
    EncodeQueryRequest(&bytes, request);
    Slice in(bytes);
    auto decoded = DecodeQueryRequestWire(&in);
    ASSERT_TRUE(decoded.ok())
        << QueryKindName(request) << ": " << decoded.status();
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded->index(), request.index());
    std::string again;
    EncodeQueryRequest(&again, *decoded);
    EXPECT_EQ(again, bytes) << QueryKindName(request);
  }
}

TEST(QueryCodecTest, RequestFieldsSurviveRoundTrip) {
  std::string bytes;
  EncodeQueryRequest(&bytes, QueryRequest(SampleTimeQuery{42, 0.375}));
  Slice in(bytes);
  auto decoded = DecodeQueryRequestWire(&in);
  ASSERT_TRUE(decoded.ok());
  const auto& q = std::get<SampleTimeQuery>(*decoded);
  EXPECT_EQ(q.k, 42u);
  EXPECT_EQ(q.time, 0.375);

  bytes.clear();
  EncodeQueryRequest(&bytes, QueryRequest(PatternQuery{"(x,y);", true}));
  Slice in2(bytes);
  auto p = DecodeQueryRequestWire(&in2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(std::get<PatternQuery>(*p).pattern_newick, "(x,y);");
  EXPECT_TRUE(std::get<PatternQuery>(*p).match_weights);
}

TEST(QueryCodecTest, EnvelopeCarriesTreeName) {
  std::string bytes;
  EncodeQueryEnvelope(&bytes, {"tree/with odd name",
                               QueryRequest(LcaQuery{"a", "b"})});
  Slice in(bytes);
  auto decoded = DecodeQueryEnvelope(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tree_name, "tree/with odd name");
  EXPECT_EQ(std::get<LcaQuery>(decoded->request).a, "a");
  std::string again;
  EncodeQueryEnvelope(&again, *decoded);
  EXPECT_EQ(again, bytes);
}

PhyloTree MakeTree(uint64_t seed, size_t leaves) {
  Rng rng(seed);
  YuleOptions yule;
  yule.n_leaves = leaves;
  auto tree = SimulateYule(yule, &rng);
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

TEST(QueryCodecTest, EveryResultKindRoundTripsByteIdentically) {
  PhyloTree proj = MakeTree(7, 12);
  PhyloTree pat = MakeTree(9, 5);
  const std::vector<QueryResult> kAll = {
      QueryResult(LcaAnswer{NodeId{17}, "anc_17"}),
      QueryResult(ProjectAnswer{std::move(proj)}),
      QueryResult(SampleAnswer{{"S1", "S2", "S3"}}),
      QueryResult(CladeAnswer{NodeId{3}, 11, 6}),
      QueryResult(PatternAnswer{false, 0.625, std::move(pat)}),
  };
  for (const auto& result : kAll) {
    std::string bytes;
    EncodeQueryResult(&bytes, result);
    Slice in(bytes);
    auto decoded = DecodeQueryResultWire(&in);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded->index(), result.index());
    // Byte identity of the re-encoding, and semantic identity of the
    // human renderings (what clients display / history stores).
    std::string again;
    EncodeQueryResult(&again, *decoded);
    EXPECT_EQ(again, bytes);
    EXPECT_EQ(RenderResult(*decoded), RenderResult(result));
    EXPECT_EQ(SummarizeResult(*decoded), SummarizeResult(result));
  }
}

TEST(TreeCodecTest, SimulatedTreeRoundTripsExactly) {
  PhyloTree tree = MakeTree(123, 64);
  std::string bytes;
  EncodeTree(&bytes, tree);
  Slice in(bytes);
  auto decoded = DecodeTree(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded->size(), tree.size());
  EXPECT_EQ(decoded->LeafCount(), tree.LeafCount());
  // Bit-exact edge lengths and identical topology => identical Newick
  // and identical re-encoding.
  EXPECT_EQ(WriteNewick(*decoded), WriteNewick(tree));
  std::string again;
  EncodeTree(&again, *decoded);
  EXPECT_EQ(again, bytes);
}

TEST(TreeCodecTest, EmptyTreeRoundTrips) {
  PhyloTree empty;
  std::string bytes;
  EncodeTree(&bytes, empty);
  Slice in(bytes);
  auto decoded = DecodeTree(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 0u);
}

TEST(MetadataCodecTest, TreeInfoListRoundTrips) {
  std::vector<TreeInfo> infos(2);
  infos[0].tree_id = 1;
  infos[0].name = "alpha";
  infos[0].n_nodes = 100;
  infos[0].n_leaves = 51;
  infos[0].f = 3;
  infos[0].max_depth = 9;
  infos[1].tree_id = 2;
  infos[1].name = "beta";
  std::string bytes;
  EncodeTreeInfoList(&bytes, infos);
  Slice in(bytes);
  auto decoded = DecodeTreeInfoList(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].name, "alpha");
  EXPECT_EQ((*decoded)[0].n_nodes, 100);
  EXPECT_EQ((*decoded)[0].max_depth, 9);
  EXPECT_EQ((*decoded)[1].tree_id, 2);
  std::string again;
  EncodeTreeInfoList(&again, *decoded);
  EXPECT_EQ(again, bytes);
}

TEST(MetadataCodecTest, StoreTreeRequestRoundTrips) {
  StoreTreeRequest req;
  req.name = "stored";
  req.format = TreeFormat::kNexus;
  req.mode = LoadMode::kTreeWithSpeciesData;
  req.text = "#NEXUS\nbegin trees;\nend;\n";
  std::string bytes;
  EncodeStoreTreeRequest(&bytes, req);
  Slice in(bytes);
  auto decoded = DecodeStoreTreeRequest(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->name, "stored");
  EXPECT_EQ(decoded->format, TreeFormat::kNexus);
  EXPECT_EQ(decoded->mode, LoadMode::kTreeWithSpeciesData);
  EXPECT_EQ(decoded->text, req.text);
}

TEST(MetadataCodecTest, HistoryEntriesRoundTrip) {
  std::vector<QueryRepository::Entry> entries(2);
  entries[0].query_id = 41;
  entries[0].timestamp_micros = 1754500000000000;
  entries[0].kind = "lca";
  entries[0].params = "tree=fig1&a=Lla&b=Spy";
  entries[0].summary = "lca(Lla,Spy) = n6";
  entries[1].query_id = 42;
  entries[1].kind = "sample_uniform";
  std::string bytes;
  EncodeHistoryEntries(&bytes, entries);
  Slice in(bytes);
  auto decoded = DecodeHistoryEntries(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].query_id, 41);
  EXPECT_EQ((*decoded)[0].params, "tree=fig1&a=Lla&b=Spy");
  EXPECT_EQ((*decoded)[1].kind, "sample_uniform");
  std::string again;
  EncodeHistoryEntries(&again, *decoded);
  EXPECT_EQ(again, bytes);
}

TEST(StatusCodecTest, EveryCodeRoundTrips) {
  const std::vector<Status> kAll = {
      Status::OK(),
      Status::NotFound("no such tree"),
      Status::Corruption("bad frame"),
      Status::InvalidArgument("bad arg"),
      Status::IOError("disk"),
      Status::AlreadyExists("dup tree"),
      Status::FailedPrecondition("version"),
      Status::OutOfRange("range"),
      Status::Unimplemented("todo"),
      Status::Internal("bug"),
      Status::ResourceExhausted("pool"),
      Status::Unavailable("saturated", /*retry_after_ms=*/35),
  };
  for (const Status& status : kAll) {
    std::string bytes;
    EncodeStatusPayload(&bytes, status);
    Slice in(bytes);
    Status decoded;
    ASSERT_TRUE(DecodeStatusPayload(&in, &decoded).ok());
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
    EXPECT_EQ(decoded.retry_after_ms(), status.retry_after_ms());
  }
}

TEST(StatusCodecTest, RetryAfterSurvivesTheWire) {
  std::string bytes;
  EncodeStatusPayload(&bytes, Status::Unavailable("busy", 250));
  Slice in(bytes);
  Status decoded;
  ASSERT_TRUE(DecodeStatusPayload(&in, &decoded).ok());
  EXPECT_TRUE(decoded.IsUnavailable());
  EXPECT_EQ(decoded.retry_after_ms(), 250);
}

TEST(StatusCodecTest, TruncatedStatusFailsCleanly) {
  std::string bytes;
  EncodeStatusPayload(&bytes, Status::NotFound("a reasonably long message"));
  for (size_t n = 0; n + 1 < bytes.size(); ++n) {
    Slice in(bytes.data(), n);
    Status decoded;
    Status ok = DecodeStatusPayload(&in, &decoded);
    // Either a clean decode failure, or (for prefixes that happen to
    // form a complete shorter encoding) a decodable status.
    if (!ok.ok()) EXPECT_TRUE(ok.IsInvalidArgument());
  }
}

TEST(StatsCodecTest, EveryCounterRoundTrips) {
  SessionStats stats;
  stats.cache.hits = 101;
  stats.cache.misses = 7;
  stats.cache.insertions = 6;
  stats.cache.evictions = 5;
  stats.cache.invalidations = 4;
  stats.cache.stale_skips = 3;
  stats.cache.bypassed = 2;
  stats.cache.entries = 9;
  stats.cache.bytes_used = 48000;
  stats.cache.budget_bytes = 1 << 20;
  stats.cache.crack_stores = 11;
  stats.cache.crack_pieces = 12;
  stats.cache.crack_loaded_pieces = 13;
  stats.cache.crack_sequences_loaded = 14;
  stats.cache.crack_sequences_total = 15;
  stats.cache.crack_fetches = 16;
  stats.cache.crack_batches = 17;
  stats.cache.crack_piece_hits = 18;
  stats.pages.captured_pages = 21;
  stats.pages.version_hits = 22;
  stats.pages.versions_dropped = 23;
  stats.pages.live_versions = 24;
  stats.pages.active_snapshots = 25;
  stats.pages.committed_epoch = 26;

  std::string bytes;
  EncodeSessionStats(&bytes, stats);
  Slice in(bytes);
  auto decoded = DecodeSessionStats(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());

  EXPECT_EQ(decoded->cache.hits, stats.cache.hits);
  EXPECT_EQ(decoded->cache.misses, stats.cache.misses);
  EXPECT_EQ(decoded->cache.insertions, stats.cache.insertions);
  EXPECT_EQ(decoded->cache.evictions, stats.cache.evictions);
  EXPECT_EQ(decoded->cache.invalidations, stats.cache.invalidations);
  EXPECT_EQ(decoded->cache.stale_skips, stats.cache.stale_skips);
  EXPECT_EQ(decoded->cache.bypassed, stats.cache.bypassed);
  EXPECT_EQ(decoded->cache.entries, stats.cache.entries);
  EXPECT_EQ(decoded->cache.bytes_used, stats.cache.bytes_used);
  EXPECT_EQ(decoded->cache.budget_bytes, stats.cache.budget_bytes);
  EXPECT_EQ(decoded->cache.crack_stores, stats.cache.crack_stores);
  EXPECT_EQ(decoded->cache.crack_pieces, stats.cache.crack_pieces);
  EXPECT_EQ(decoded->cache.crack_loaded_pieces,
            stats.cache.crack_loaded_pieces);
  EXPECT_EQ(decoded->cache.crack_sequences_loaded,
            stats.cache.crack_sequences_loaded);
  EXPECT_EQ(decoded->cache.crack_sequences_total,
            stats.cache.crack_sequences_total);
  EXPECT_EQ(decoded->cache.crack_fetches, stats.cache.crack_fetches);
  EXPECT_EQ(decoded->cache.crack_batches, stats.cache.crack_batches);
  EXPECT_EQ(decoded->cache.crack_piece_hits, stats.cache.crack_piece_hits);
  EXPECT_EQ(decoded->pages.captured_pages, stats.pages.captured_pages);
  EXPECT_EQ(decoded->pages.version_hits, stats.pages.version_hits);
  EXPECT_EQ(decoded->pages.versions_dropped, stats.pages.versions_dropped);
  EXPECT_EQ(decoded->pages.live_versions, stats.pages.live_versions);
  EXPECT_EQ(decoded->pages.active_snapshots, stats.pages.active_snapshots);
  EXPECT_EQ(decoded->pages.committed_epoch, stats.pages.committed_epoch);
}

TEST(StatsCodecTest, UnknownKeysAreSkippedAbsentKeysDefaultToZero) {
  // A "future server" payload: one known counter, one unknown.
  std::string bytes;
  PutVarint64(&bytes, 2);
  PutLengthPrefixedSlice(&bytes, Slice("cache.hits"));
  PutVarint64(&bytes, 42);
  PutLengthPrefixedSlice(&bytes, Slice("cache.some_future_counter"));
  PutVarint64(&bytes, 7);

  Slice in(bytes);
  auto decoded = DecodeSessionStats(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->cache.hits, 42u);
  EXPECT_EQ(decoded->cache.misses, 0u);
  EXPECT_EQ(decoded->pages.committed_epoch, 0u);
}

TEST(StatsCodecTest, RegistryCountersAndHistogramsRoundTrip) {
  SessionStats stats;
  stats.metrics.counters["query.lca.count"] = 17;
  stats.metrics.counters["storage.pool.hits"] = 900;
  // The 24 legacy keys are encoded from the structs (struct wins over
  // any same-named registry counter).
  stats.cache.hits = 3;
  stats.metrics.counters["cache.hits"] = 999;
  obs::HistogramSnapshot h;
  h.bounds = {10, 100, UINT64_MAX};
  h.counts = {5, 2, 1};
  h.count = 8;
  h.sum = 1234;
  stats.metrics.histograms["query.lca.latency_us"] = h;

  std::string bytes;
  EncodeSessionStats(&bytes, stats);
  Slice in(bytes);
  auto decoded = DecodeSessionStats(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->metrics.counter("query.lca.count"), 17u);
  EXPECT_EQ(decoded->metrics.counter("storage.pool.hits"), 900u);
  EXPECT_EQ(decoded->cache.hits, 3u);  // legacy struct filled from the dict
  const obs::HistogramSnapshot* dh =
      decoded->metrics.histogram("query.lca.latency_us");
  ASSERT_NE(dh, nullptr);
  EXPECT_EQ(dh->bounds, h.bounds);
  EXPECT_EQ(dh->counts, h.counts);
  EXPECT_EQ(dh->count, h.count);
  EXPECT_EQ(dh->sum, h.sum);
}

TEST(StatsCodecTest, DecodedSnapshotReEncodesByteIdentically) {
  SessionStats stats;
  stats.cache.hits = 42;
  stats.pages.committed_epoch = 9;
  stats.metrics.counters["net.frames_received"] = 55;
  stats.metrics.counters["zz.some_gauge"] = 1;
  obs::HistogramSnapshot h;
  h.bounds = {1, 2, 4, UINT64_MAX};
  h.counts = {1, 0, 3, 0};
  h.count = 4;
  h.sum = 13;
  stats.metrics.histograms["net.op.ping_us"] = h;
  stats.metrics.histograms["query.stage.execute_us"] = h;

  std::string bytes;
  EncodeSessionStats(&bytes, stats);
  Slice in(bytes);
  auto decoded = DecodeSessionStats(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  std::string again;
  EncodeSessionStats(&again, *decoded);
  EXPECT_EQ(again, bytes);
}

TEST(StatsCodecTest, CounterOnlyPayloadStillDecodes) {
  // A pre-histogram peer's payload ends right after the counter
  // dictionary; the decoder must treat the missing histogram section
  // as empty, not as truncation.
  std::string bytes;
  PutVarint64(&bytes, 1);
  PutLengthPrefixedSlice(&bytes, Slice("cache.hits"));
  PutVarint64(&bytes, 5);

  Slice in(bytes);
  auto decoded = DecodeSessionStats(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->cache.hits, 5u);
  EXPECT_TRUE(decoded->metrics.histograms.empty());
}

TEST(StatsCodecTest, UnknownHistogramKeysAreCarriedNotFatal) {
  // A "future server" histogram under an unknown name must decode
  // cleanly (and survive a proxy re-encode) without touching any
  // legacy struct field.
  std::string bytes;
  PutVarint64(&bytes, 0);  // no counters
  PutVarint64(&bytes, 1);  // one histogram
  PutLengthPrefixedSlice(&bytes, Slice("future.subsystem.latency_us"));
  PutVarint64(&bytes, 2);  // two buckets
  PutVarint64(&bytes, 10);
  PutVarint64(&bytes, 3);
  PutVarint64(&bytes, UINT64_MAX);
  PutVarint64(&bytes, 1);
  PutVarint64(&bytes, 4);   // count
  PutVarint64(&bytes, 33);  // sum

  Slice in(bytes);
  auto decoded = DecodeSessionStats(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded->cache.hits, 0u);
  const obs::HistogramSnapshot* h =
      decoded->metrics.histogram("future.subsystem.latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 33u);
  ASSERT_EQ(h->bounds.size(), 2u);
  EXPECT_EQ(h->bounds[1], UINT64_MAX);
}

TEST(StatsCodecTest, TruncatedStatsFailCleanly) {
  SessionStats stats;
  stats.cache.hits = 5;
  std::string bytes;
  EncodeSessionStats(&bytes, stats);
  for (size_t n = 0; n + 1 < bytes.size(); ++n) {
    Slice in(bytes.data(), n);
    auto decoded = DecodeSessionStats(&in);
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsInvalidArgument());
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace crimson
