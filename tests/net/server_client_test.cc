// Loopback tests for CrimsonServer + CrimsonClient: every session
// operation over the wire, byte-identity of wire results vs in-process
// execution, pipelining == sequential identity, typed errors,
// backpressure (kUnavailable + retry-after) under a saturated pool,
// hostile raw-socket input against a live server, and graceful drain.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "crimson/crimson.h"
#include "crimson/service.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace crimson {
namespace net {
namespace {

constexpr char kFig1Newick[] =
    "(Syn:2.5,((Lla:1,Spy:1):0.5,Bha:1.5):0.75,Bsu:1.25)root;";

std::unique_ptr<Crimson> OpenSession(uint64_t seed) {
  CrimsonOptions opts;
  opts.f = 3;
  opts.seed = seed;
  opts.batch_workers = 2;
  auto c = Crimson::Open(opts);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

/// One running server over one fresh in-memory session.
struct TestServer {
  std::unique_ptr<Crimson> session;
  std::unique_ptr<SessionService> service;
  std::unique_ptr<CrimsonServer> server;

  static TestServer Start(uint64_t seed, ServerOptions options = {}) {
    TestServer t;
    t.session = OpenSession(seed);
    t.service = std::make_unique<SessionService>(t.session.get());
    auto server = CrimsonServer::Start(t.service.get(), options);
    EXPECT_TRUE(server.ok()) << server.status();
    t.server = std::move(server).value();
    return t;
  }

  std::unique_ptr<CrimsonClient> Connect() {
    ClientOptions options;
    options.port = server->port();
    auto client = CrimsonClient::Connect(options);
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }
};

std::string YuleNewick(uint64_t seed, size_t leaves) {
  Rng rng(seed);
  YuleOptions yule;
  yule.n_leaves = leaves;
  auto tree = SimulateYule(yule, &rng);
  EXPECT_TRUE(tree.ok());
  return WriteNewick(*tree);
}

std::vector<QueryRequest> SixKinds() {
  return {
      QueryRequest(LcaQuery{"Lla", "Syn"}),
      QueryRequest(ProjectQuery{{"Bha", "Lla", "Syn"}}),
      QueryRequest(SampleUniformQuery{3}),
      QueryRequest(SampleTimeQuery{4, 1.0}),
      QueryRequest(CladeQuery{{"Lla", "Spy"}}),
      QueryRequest(PatternQuery{"((Bha:1.5,Lla:1.5):0.75,Syn:2.5);", true}),
  };
}

/// Reads frames off a raw socket until EOF or `n` frames arrive.
std::vector<Frame> ReadFrames(const Socket& sock, size_t n) {
  std::vector<Frame> frames;
  std::string buffer;
  char chunk[4096];
  while (frames.size() < n) {
    auto got = RecvSome(sock, chunk, sizeof(chunk));
    if (!got.ok() || *got == 0) break;
    buffer.append(chunk, *got);
    Slice in(buffer);
    Frame frame;
    std::string error;
    FrameDecode rc;
    while ((rc = DecodeFrame(&in, &frame, &error)) == FrameDecode::kFrame) {
      frames.push_back(frame);
    }
    EXPECT_NE(rc, FrameDecode::kBad) << error;
    buffer.erase(0, buffer.size() - in.size());
  }
  return frames;
}

// -- session operations over the wire ---------------------------------------

TEST(ServerClientTest, PingEchoesPayload) {
  TestServer t = TestServer::Start(1);
  auto client = t.Connect();
  auto echo = client->Ping("twelve bytes");
  ASSERT_TRUE(echo.ok()) << echo.status();
  EXPECT_EQ(*echo, "twelve bytes");
  EXPECT_TRUE(client->Ping("").ok());
}

TEST(ServerClientTest, StoreOpenListAndHistory) {
  TestServer t = TestServer::Start(2);
  auto client = t.Connect();

  auto stored = client->StoreNewick("fig1", kFig1Newick);
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_EQ(stored->name, "fig1");
  EXPECT_EQ(stored->n_nodes, 8);
  EXPECT_EQ(stored->n_leaves, 5);

  auto opened = client->OpenTree("fig1");
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(opened->tree_id, stored->tree_id);

  auto trees = client->ListTrees();
  ASSERT_TRUE(trees.ok());
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].name, "fig1");

  auto lca = client->Execute("fig1", QueryRequest(LcaQuery{"Lla", "Syn"}));
  ASSERT_TRUE(lca.ok()) << lca.status();
  EXPECT_EQ(std::get<LcaAnswer>(*lca).name, "root");

  // The query went through the session's recorded-history path.
  auto history = client->History(10);
  ASSERT_TRUE(history.ok()) << history.status();
  ASSERT_EQ(history->size(), 1u);
  EXPECT_EQ((*history)[0].kind, "lca");
  EXPECT_TRUE(client->Checkpoint().ok());
}

TEST(ServerClientTest, TypedErrorsTravelTheWire) {
  TestServer t = TestServer::Start(3);
  auto client = t.Connect();

  EXPECT_TRUE(client->OpenTree("ghost").status().IsNotFound());
  EXPECT_TRUE(client->Execute("ghost", QueryRequest(LcaQuery{"a", "b"}))
                  .status()
                  .IsNotFound());
  auto bad = client->StoreNewick("broken", "((((");
  EXPECT_FALSE(bad.ok());
  // The transport survives typed errors: the connection still works.
  EXPECT_TRUE(client->Ping("still here").ok());
}

// -- byte identity: wire == in-process --------------------------------------

TEST(ServerClientTest, WireResultsMatchInProcessExecution) {
  // Same seed, same tree, same query order: the remote session and the
  // local one must produce identical results (rendered and summarized
  // identically), because a remote query takes exactly the in-process
  // dispatch path.
  const std::string newick = YuleNewick(77, 64);
  TestServer t = TestServer::Start(99);
  auto client = t.Connect();
  ASSERT_TRUE(client->StoreNewick("twin", newick).ok());

  auto local = OpenSession(99);
  auto report = local->LoadNewick("twin", newick);
  ASSERT_TRUE(report.ok());

  for (const auto& request : SixKinds()) {
    auto wire = client->Execute("twin", request);
    auto in_process = local->Execute(report->ref, request);
    // Some fig1-specific species are absent from the Yule tree; the
    // two sides must fail or succeed together, identically.
    ASSERT_EQ(wire.ok(), in_process.ok()) << QueryKindName(request);
    if (!wire.ok()) {
      EXPECT_EQ(wire.status().code(), in_process.status().code());
      continue;
    }
    EXPECT_EQ(RenderResult(*wire), RenderResult(*in_process))
        << QueryKindName(request);
    EXPECT_EQ(SummarizeResult(*wire), SummarizeResult(*in_process))
        << QueryKindName(request);
  }
}

TEST(ServerClientTest, PipelinedBatchMatchesSequentialByteForByte) {
  // Two servers over two fresh same-seed sessions; one client
  // pipelines the whole batch (which the server coalesces into one
  // ExecuteBatch), the other issues the queries one at a time. The
  // encoded response payloads must be identical.
  const std::string newick = YuleNewick(5, 48);
  TestServer pipelined = TestServer::Start(1234);
  TestServer sequential = TestServer::Start(1234);
  auto pc = pipelined.Connect();
  auto sc = sequential.Connect();
  ASSERT_TRUE(pc->StoreNewick("t", newick).ok());
  ASSERT_TRUE(sc->StoreNewick("t", newick).ok());

  const std::vector<QueryRequest> requests = {
      QueryRequest(SampleUniformQuery{4}),
      QueryRequest(SampleUniformQuery{4}),
      QueryRequest(SampleTimeQuery{3, 0.5}),
      QueryRequest(LcaQuery{"S1", "S2"}),
      QueryRequest(SampleUniformQuery{2}),
  };
  auto batched = pc->ExecuteBatch("t", requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto one = sc->Execute("t", requests[i]);
    ASSERT_EQ(batched[i].ok(), one.ok()) << "query " << i;
    if (!one.ok()) continue;
    std::string batched_bytes, one_bytes;
    EncodeQueryResult(&batched_bytes, *batched[i]);
    EncodeQueryResult(&one_bytes, *one);
    EXPECT_EQ(batched_bytes, one_bytes) << "query " << i;
  }
  // Coalescing actually happened: fewer batches than queries.
  auto stats = pipelined.server->stats();
  EXPECT_EQ(stats.queries_executed, requests.size());
  EXPECT_LT(stats.batches_executed, requests.size());
}

TEST(ServerClientTest, PipelinedErrorsPreserveOrder) {
  TestServer t = TestServer::Start(6);
  auto client = t.Connect();
  ASSERT_TRUE(client->StoreNewick("fig1", kFig1Newick).ok());
  const std::vector<QueryRequest> requests = {
      QueryRequest(LcaQuery{"Lla", "Syn"}),
      QueryRequest(LcaQuery{"Lla", "no_such_species"}),
      QueryRequest(SampleUniformQuery{2}),
  };
  auto results = client->ExecuteBatch("fig1", requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

// -- backpressure ------------------------------------------------------------

TEST(ServerClientTest, SaturationRejectsWithRetryAfter) {
  ServerOptions options;
  options.max_exec_concurrency = 1;
  options.max_inflight_queries = 1;
  options.retry_after_ms = 7;
  options.inject_query_delay_us = 300 * 1000;  // each query holds 300ms
  TestServer t = TestServer::Start(7, options);
  auto slow_client = t.Connect();
  ASSERT_TRUE(slow_client->StoreNewick("fig1", kFig1Newick).ok());

  // Occupy the single admission slot with a slow query...
  std::thread slow([&] {
    auto r = slow_client->Execute("fig1", QueryRequest(LcaQuery{"Lla", "Syn"}));
    EXPECT_TRUE(r.ok()) << r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...then a second client must be turned away with the typed signal.
  auto client = t.Connect();
  auto rejected = client->Execute("fig1", QueryRequest(LcaQuery{"Lla", "Syn"}));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status();
  EXPECT_EQ(rejected.status().retry_after_ms(), 7);
  slow.join();

  // The rejection was bounded-queue behavior, not a broken server: the
  // canonical retry loop succeeds once the slot frees up.
  auto retried = client->ExecuteWithRetry(
      "fig1", QueryRequest(LcaQuery{"Lla", "Syn"}), /*max_attempts=*/100);
  EXPECT_TRUE(retried.ok()) << retried.status();
  EXPECT_GT(t.server->stats().queries_rejected_unavailable, 0u);
}

TEST(ServerClientTest, ConnectionPoolBoundRejectsExtraConnections) {
  ServerOptions options;
  options.max_connections = 1;
  TestServer t = TestServer::Start(8, options);
  auto first = t.Connect();
  ASSERT_TRUE(first->Ping("a").ok());

  // The second connection is answered with kUnavailable and closed.
  // (Raw socket: nothing is sent, we just read the server's verdict.)
  auto second = ConnectTcp("127.0.0.1", t.server->port());
  ASSERT_TRUE(second.ok()) << second.status();  // TCP connect succeeds
  auto frames = ReadFrames(*second, 1);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, MessageType::kError);
  Slice payload(frames[0].payload);
  Status carried;
  ASSERT_TRUE(DecodeStatusPayload(&payload, &carried).ok());
  EXPECT_TRUE(carried.IsUnavailable()) << carried;
  EXPECT_GT(carried.retry_after_ms(), 0);

  // The admitted connection is unaffected.
  EXPECT_TRUE(first->Ping("c").ok());
}

// -- hostile input against a live server ------------------------------------

TEST(ServerClientTest, GarbageBytesGetTypedErrorThenDisconnect) {
  TestServer t = TestServer::Start(9);
  auto raw = ConnectTcp("127.0.0.1", t.server->port());
  ASSERT_TRUE(raw.ok()) << raw.status();
  ASSERT_TRUE(SendAll(*raw, "not a frame at all, definitely garbage", 38).ok());

  auto frames = ReadFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kError);
  Slice payload(frames[0].payload);
  Status carried;
  ASSERT_TRUE(DecodeStatusPayload(&payload, &carried).ok());
  EXPECT_TRUE(carried.IsCorruption()) << carried;

  // After the error the server hangs up (framing lost sync)...
  char byte;
  auto eof = RecvSome(*raw, &byte, 1);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);

  // ...but the server itself is fine.
  auto client = t.Connect();
  EXPECT_TRUE(client->Ping("alive").ok());
  EXPECT_GT(t.server->stats().protocol_errors, 0u);
}

TEST(ServerClientTest, OversizedFrameIsRejectedNotBuffered) {
  ServerOptions options;
  options.max_frame_payload = 1024;
  TestServer t = TestServer::Start(10, options);
  auto raw = ConnectTcp("127.0.0.1", t.server->port());
  ASSERT_TRUE(raw.ok());

  // A header declaring a 1GiB payload; no payload bytes follow.
  std::string header;
  PutFixed16(&header, kFrameMagic);
  header.push_back(static_cast<char>(kProtocolVersion));
  header.push_back(static_cast<char>(MessageType::kPing));
  PutFixed32(&header, 1u << 30);
  PutFixed32(&header, 0);
  ASSERT_TRUE(SendAll(*raw, header.data(), header.size()).ok());

  auto frames = ReadFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kError);
}

TEST(ServerClientTest, UnknownMessageTypeGetsUnimplemented) {
  TestServer t = TestServer::Start(11);
  auto raw = ConnectTcp("127.0.0.1", t.server->port());
  ASSERT_TRUE(raw.ok());
  std::string wire;
  AppendFrame(&wire, static_cast<MessageType>(50), "mystery payload");
  ASSERT_TRUE(SendAll(*raw, wire.data(), wire.size()).ok());

  auto frames = ReadFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, MessageType::kError);
  Slice payload(frames[0].payload);
  Status carried;
  ASSERT_TRUE(DecodeStatusPayload(&payload, &carried).ok());
  EXPECT_TRUE(carried.IsUnimplemented()) << carried;

  // Unknown types are recoverable (framing is intact): the same
  // connection still answers a well-formed request.
  wire.clear();
  AppendFrame(&wire, MessageType::kPing, "ok?");
  ASSERT_TRUE(SendAll(*raw, wire.data(), wire.size()).ok());
  frames = ReadFrames(*raw, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kPong);
  EXPECT_EQ(frames[0].payload, "ok?");
}

TEST(ServerClientTest, TruncatedFrameAtDisconnectIsHandled) {
  TestServer t = TestServer::Start(12);
  {
    auto raw = ConnectTcp("127.0.0.1", t.server->port());
    ASSERT_TRUE(raw.ok());
    // A valid frame cut mid-payload, then the peer vanishes.
    std::string wire;
    AppendFrame(&wire, MessageType::kPing, std::string(500, 'x'));
    ASSERT_TRUE(SendAll(*raw, wire.data(), wire.size() - 100).ok());
  }  // destructor closes the socket
  // The server must treat the torn tail as a dead peer, not corruption,
  // and keep serving.
  auto client = t.Connect();
  EXPECT_TRUE(client->Ping("after torn frame").ok());
}

TEST(ServerClientTest, StressRandomGarbageConnectionsNeverKillServer) {
  TestServer t = TestServer::Start(13);
  auto client = t.Connect();
  ASSERT_TRUE(client->StoreNewick("fig1", kFig1Newick).ok());

  Rng rng(20260807);
  for (int round = 0; round < 50; ++round) {
    auto raw = ConnectTcp("127.0.0.1", t.server->port());
    ASSERT_TRUE(raw.ok());
    // Noise may be an incomplete frame prefix, to which the server
    // rightly answers nothing -- bound the wait for its verdict.
    ASSERT_TRUE(SetRecvTimeout(*raw, 200).ok());
    std::string noise;
    if (rng.OneIn(3)) {
      // Mutated valid frame.
      AppendFrame(&noise, MessageType::kQuery, "target practice");
      size_t flips = 1 + rng.Uniform(6);
      for (size_t f = 0; f < flips; ++f) {
        noise[rng.Uniform(noise.size())] ^=
            static_cast<char>(1 + rng.Uniform(255));
      }
    } else {
      noise.resize(1 + rng.Uniform(256));
      for (auto& c : noise) c = static_cast<char>(rng.Next());
    }
    (void)SendAll(*raw, noise.data(), noise.size());
    // Half the time, wait for the server's verdict; otherwise slam the
    // connection shut mid-exchange.
    if (rng.OneIn(2)) (void)ReadFrames(*raw, 1);
  }

  // The server survived 50 hostile connections and still serves the
  // well-behaved one.
  auto lca = client->Execute("fig1", QueryRequest(LcaQuery{"Lla", "Syn"}));
  EXPECT_TRUE(lca.ok()) << lca.status();
}

// -- graceful drain -----------------------------------------------------------

TEST(ServerClientTest, ShutdownDrainsAndCheckpoints) {
  ServerOptions options;
  options.inject_query_delay_us = 100 * 1000;
  TestServer t = TestServer::Start(14, options);
  auto client = t.Connect();
  ASSERT_TRUE(client->StoreNewick("fig1", kFig1Newick).ok());

  // A query is in flight when the drain starts; its response must
  // still arrive (read side closes, write side flushes).
  std::thread in_flight([&] {
    auto r = client->Execute("fig1", QueryRequest(LcaQuery{"Lla", "Syn"}));
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(std::get<LcaAnswer>(*r).name, "root");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(t.server->Shutdown().ok());
  in_flight.join();

  // Shutdown is idempotent, and the port no longer accepts work.
  EXPECT_TRUE(t.server->Shutdown().ok());
  ClientOptions copts;
  copts.port = t.server->port();
  auto late = CrimsonClient::Connect(copts);
  if (late.ok()) EXPECT_FALSE((*late)->Ping("too late").ok());
}

TEST(ServerClientTest, ServerStatsReflectCacheTraffic) {
  TestServer t = TestServer::Start(16);
  auto client = t.Connect();
  ASSERT_TRUE(client->StoreNewick("fig1", kFig1Newick).ok());

  // Fresh server: no cache traffic yet, but the budget is visible and
  // the MVCC epoch has advanced past the store.
  auto before = client->ServerStats();
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->cache.hits, 0u);
  EXPECT_GT(before->cache.budget_bytes, 0u);
  EXPECT_GT(before->pages.committed_epoch, 0u);

  // Same cacheable query three times: one miss, two hits -- and the
  // remote counters match what the in-process session reports.
  const QueryRequest lca{LcaQuery{"Lla", "Syn"}};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Execute("fig1", lca).ok());
  }
  ASSERT_TRUE(client->Execute("fig1",
                              QueryRequest(SampleUniformQuery{3})).ok());
  auto after = client->ServerStats();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->cache.hits, 2u);
  EXPECT_EQ(after->cache.misses, 1u);
  EXPECT_EQ(after->cache.entries, 1u);
  EXPECT_EQ(after->cache.bypassed, 1u);

  cache::CacheStats local = t.session->GetCacheStats();
  EXPECT_EQ(after->cache.hits, local.hits);
  EXPECT_EQ(after->cache.misses, local.misses);
  EXPECT_EQ(after->cache.bytes_used, local.bytes_used);
  EXPECT_EQ(after->pages.committed_epoch,
            t.session->database()->page_version_stats().committed_epoch);
}

TEST(ServerClientTest, ServerMetricsRoundTripsEveryLayer) {
  TestServer t = TestServer::Start(21);
  auto client = t.Connect();
  ASSERT_TRUE(client->StoreNewick("fig1", kFig1Newick).ok());
  const QueryRequest lca{LcaQuery{"Lla", "Syn"}};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Execute("fig1", lca).ok());
  }

  auto metrics = client->ServerMetrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  // Session layer: per-kind counters and latency histograms.
  EXPECT_EQ(metrics->counter("query.lca.count"), 3u);
  const obs::HistogramSnapshot* lat =
      metrics->histogram("query.lca.latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 3u);
  EXPECT_FALSE(lat->bounds.empty());
  EXPECT_EQ(lat->bounds.back(), UINT64_MAX);

  // Storage layer: the store + reads touched the buffer pool.
  EXPECT_GT(metrics->counter("storage.pool.hits") +
                metrics->counter("storage.pool.misses"),
            0u);

  // Cache layer: one miss, two hits, and the values match the legacy
  // struct counters on the same wire response.
  EXPECT_EQ(metrics->counter("cache.hits"), 2u);
  EXPECT_EQ(metrics->counter("cache.misses"), 1u);
  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(metrics->counter("cache.hits"), stats->cache.hits);

  // Net layer: this connection's frames and queries, plus per-op
  // latency histograms, all counted by the server front door.
  EXPECT_GT(metrics->counter("net.frames_received"), 0u);
  EXPECT_EQ(metrics->counter("net.queries_executed"), 3u);
  EXPECT_EQ(metrics->counter("net.connections_accepted"), 1u);
  const obs::HistogramSnapshot* query_run =
      metrics->histogram("net.op.query_run_us");
  ASSERT_NE(query_run, nullptr);
  EXPECT_EQ(query_run->count, 3u);
  const obs::HistogramSnapshot* admission =
      metrics->histogram("net.admission_wait_us");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->count, 3u);
}

TEST(ServerClientTest, StatsRejectsTrailingPayloadBytes) {
  TestServer t = TestServer::Start(17);
  ClientOptions copts;
  copts.port = t.server->port();
  auto sock = ConnectTcp(copts.host, copts.port);
  ASSERT_TRUE(sock.ok()) << sock.status();

  std::string wire;
  AppendFrame(&wire, MessageType::kStats, Slice("junk"));
  ASSERT_TRUE(SendAll(*sock, wire.data(), wire.size()).ok());
  std::vector<Frame> frames = ReadFrames(*sock, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kError);
  Slice in(frames[0].payload);
  Status carried;
  ASSERT_TRUE(DecodeStatusPayload(&in, &carried).ok());
  EXPECT_TRUE(carried.IsInvalidArgument());
}

TEST(ServerClientTest, DestructorShutsDownCleanly) {
  TestServer t = TestServer::Start(15);
  auto client = t.Connect();
  ASSERT_TRUE(client->Ping("x").ok());
  t.server.reset();  // ~CrimsonServer must not hang or crash
  EXPECT_FALSE(client->Ping("y").ok());
}

}  // namespace
}  // namespace net
}  // namespace crimson
