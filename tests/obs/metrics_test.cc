// Unit tests for the observability registry: counters, gauges,
// fixed-bucket histograms, snapshots, and the concurrency contract
// (resolve-once pointers updated lock-free from many threads).

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace crimson {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterResolveOnceAndAccumulate) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("a.count");
  EXPECT_EQ(c, reg.GetCounter("a.count"));  // stable pointer
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.Snapshot().counter("a.count"), 42u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("a.level");
  g->Set(7);
  g->Set(3);
  EXPECT_EQ(g->value(), 3u);
  // Gauges merge into the counters map of the snapshot.
  EXPECT_EQ(reg.Snapshot().counter("a.level"), 3u);
}

TEST(MetricsRegistryTest, SnapshotIsPointInTime) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  c->Add(5);
  MetricsSnapshot snap = reg.Snapshot();
  c->Add(100);
  EXPECT_EQ(snap.counter("x"), 5u);
  EXPECT_EQ(reg.Snapshot().counter("x"), 105u);
}

TEST(MetricsRegistryTest, UnknownNamesReadAsZeroOrNull) {
  MetricsRegistry reg;
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("never.registered"), 0u);
  EXPECT_EQ(snap.histogram("never.registered"), nullptr);
}

TEST(MetricsRegistryTest, KindMismatchReturnsDetachedCell) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("dual");
  c->Add(9);
  // Re-requesting the same name as a different kind must not crash and
  // must not corrupt the original cell.
  Histogram* h = reg.GetHistogram("dual");
  ASSERT_NE(h, nullptr);
  h->Observe(1);
  Gauge* g = reg.GetGauge("dual");
  ASSERT_NE(g, nullptr);
  g->Set(123);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("dual"), 9u);           // original kind wins
  EXPECT_EQ(snap.histogram("dual"), nullptr);    // orphan not snapshotted
}

TEST(HistogramTest, BucketAssignmentInclusiveUpperBounds) {
  Histogram h({10, 100});
  h.Observe(1);
  h.Observe(10);    // inclusive: lands in the first bucket
  h.Observe(11);
  h.Observe(100);   // second bucket
  h.Observe(5000);  // overflow bucket
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);  // 10, 100, UINT64_MAX
  EXPECT_EQ(snap.bounds[2], UINT64_MAX);
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1u + 10 + 11 + 100 + 5000);
}

TEST(HistogramTest, EmptyHistogramPercentilesAreZero) {
  Histogram h(Histogram::DefaultLatencyBoundsUs());
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p50(), 0.0);
  EXPECT_EQ(snap.p99(), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 100 observations of value 50 all land in bucket (10, 100]; every
  // percentile estimate must stay inside that bucket.
  Histogram h({10, 100, 1000});
  for (int i = 0; i < 100; ++i) h.Observe(50);
  HistogramSnapshot snap = h.Snapshot();
  for (double p : {1.0, 50.0, 99.0}) {
    double v = snap.Percentile(p);
    EXPECT_GT(v, 10.0) << "p" << p;
    EXPECT_LE(v, 100.0) << "p" << p;
  }
  EXPECT_EQ(snap.mean(), 50.0);
}

TEST(HistogramTest, PercentileOrdersAcrossBuckets) {
  Histogram h({10, 100, 1000});
  for (int i = 0; i < 90; ++i) h.Observe(5);     // 90% in bucket 0
  for (int i = 0; i < 9; ++i) h.Observe(500);    // 9% in bucket 2
  h.Observe(100000);                             // 1% overflow
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_LE(snap.p50(), 10.0);
  EXPECT_GT(snap.p95(), 100.0);
  EXPECT_LE(snap.p95(), 1000.0);
  // Overflow bucket reports its lower edge as a floor.
  EXPECT_DOUBLE_EQ(snap.Percentile(99.9), 1000.0);
}

TEST(HistogramTest, BucketWidthTracksContainingBucket) {
  Histogram h({10, 100, 1000});
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.BucketWidth(5), 10.0);     // (0, 10]
  EXPECT_DOUBLE_EQ(snap.BucketWidth(50), 90.0);    // (10, 100]
  EXPECT_DOUBLE_EQ(snap.BucketWidth(500), 900.0);  // (100, 1000]
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<uint64_t>& bounds = Histogram::DefaultLatencyBoundsUs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, HistogramBoundsApplyOnFirstCreationOnly) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat", {5, 50});
  EXPECT_EQ(h, reg.GetHistogram("lat"));          // same cell
  EXPECT_EQ(h, reg.GetHistogram("lat", {1, 2}));  // later bounds ignored
  h->Observe(3);
  MetricsSnapshot full = reg.Snapshot();
  ASSERT_NE(full.histogram("lat"), nullptr);
  EXPECT_EQ(full.histogram("lat")->bounds.size(), 3u);  // 5, 50, max
}

TEST(MetricsRegistryTest, DefaultRegistryIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST(MetricsRegistryStress, ConcurrentUpdatesLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads race registration of the same names too.
      Counter* c = reg.GetCounter("stress.count");
      Histogram* h = reg.GetHistogram("stress.lat");
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<uint64_t>((t * kOpsPerThread + i) % 1000) + 1);
        if (i % 1000 == 0) (void)reg.Snapshot();  // readers race writers
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("stress.count"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  ASSERT_NE(snap.histogram("stress.lat"), nullptr);
  EXPECT_EQ(snap.histogram("stress.lat")->count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t n : snap.histogram("stress.lat")->counts) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.histogram("stress.lat")->count);
}

}  // namespace
}  // namespace obs
}  // namespace crimson
