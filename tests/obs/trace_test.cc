// Unit tests for per-query trace spans: thread-local context install /
// adopt, SpanTimer no-op and move semantics, breakdown formatting, and
// cross-thread isolation.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace crimson {
namespace obs {
namespace {

void SpinFor(std::chrono::microseconds d) {
  auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(TraceContextTest, NoContextByDefault) {
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

TEST(TraceContextTest, ScopedTraceInstallsAndUninstalls) {
  {
    ScopedTrace trace;
    EXPECT_TRUE(trace.owner());
    EXPECT_EQ(TraceContext::Current(), trace.context());
  }
  EXPECT_EQ(TraceContext::Current(), nullptr);
}

TEST(TraceContextTest, NestedScopeAdoptsTheOuterContext) {
  ScopedTrace outer;
  {
    ScopedTrace inner;
    EXPECT_FALSE(inner.owner());
    EXPECT_EQ(inner.context(), outer.context());
  }
  // Inner scope exit must not tear down the outer context.
  EXPECT_EQ(TraceContext::Current(), outer.context());
}

TEST(TraceContextTest, AddAccumulatesAndIgnoresNonPositive) {
  ScopedTrace trace;
  TraceContext* ctx = trace.context();
  ctx->Add(Stage::kExecute, 10);
  ctx->Add(Stage::kExecute, 5);
  ctx->Add(Stage::kExecute, 0);
  ctx->Add(Stage::kExecute, -7);
  EXPECT_EQ(ctx->span_us(Stage::kExecute), 15);
  EXPECT_EQ(ctx->span_us(Stage::kCacheLookup), 0);
}

TEST(TraceContextTest, BreakdownListsNonzeroSpansInStageOrder) {
  ScopedTrace trace;
  TraceContext* ctx = trace.context();
  ctx->Add(Stage::kExecute, 340);
  ctx->Add(Stage::kCacheLookup, 12);
  EXPECT_EQ(ctx->Breakdown(), "cache_lookup=12us execute=340us");
}

TEST(TraceContextTest, ResetClearsSpansAndRestartsClock) {
  ScopedTrace trace;
  TraceContext* ctx = trace.context();
  ctx->Add(Stage::kEvalBuild, 99);
  SpinFor(std::chrono::microseconds(5000));
  EXPECT_GE(ctx->total_us(), 4000);
  ctx->Reset();
  EXPECT_EQ(ctx->span_us(Stage::kEvalBuild), 0);
  EXPECT_LT(ctx->total_us(), 4000);
}

TEST(SpanTimerTest, NoOpWithoutContext) {
  ASSERT_EQ(TraceContext::Current(), nullptr);
  // Must not crash or touch anything.
  SpanTimer timer(Stage::kStorageRead);
}

TEST(SpanTimerTest, RecordsElapsedIntoTheActiveContext) {
  ScopedTrace trace;
  {
    SpanTimer timer(Stage::kExecute);
    SpinFor(std::chrono::microseconds(300));
  }
  EXPECT_GE(trace.context()->span_us(Stage::kExecute), 250);
}

TEST(SpanTimerTest, MoveTransfersOwnershipAndDisarmsSource) {
  ScopedTrace trace;
  {
    SpanTimer a(Stage::kStorageRead);
    SpinFor(std::chrono::microseconds(200));
    SpanTimer b(std::move(a));
    // `a` is disarmed: its destruction here must not double-record.
  }
  int64_t recorded = trace.context()->span_us(Stage::kStorageRead);
  EXPECT_GE(recorded, 150);
  EXPECT_LT(recorded, 100000);  // one recording, not two huge ones
}

TEST(SpanTimerTest, MoveAssignFinishesTheOverwrittenSpan) {
  ScopedTrace trace;
  {
    SpanTimer a(Stage::kCacheLookup);
    SpinFor(std::chrono::microseconds(150));
    a = SpanTimer(Stage::kEvalBuild);  // finishes the cache_lookup span
    SpinFor(std::chrono::microseconds(150));
  }
  EXPECT_GE(trace.context()->span_us(Stage::kCacheLookup), 100);
  EXPECT_GE(trace.context()->span_us(Stage::kEvalBuild), 100);
}

TEST(StageNameTest, AllStagesHaveStableNames) {
  EXPECT_EQ(StageName(Stage::kAdmissionWait), "admission_wait");
  EXPECT_EQ(StageName(Stage::kCacheLookup), "cache_lookup");
  EXPECT_EQ(StageName(Stage::kEvalBuild), "eval_build");
  EXPECT_EQ(StageName(Stage::kStorageRead), "storage_read");
  EXPECT_EQ(StageName(Stage::kLabelDecode), "label_decode");
  EXPECT_EQ(StageName(Stage::kHistoryEnqueue), "history_enqueue");
  EXPECT_EQ(StageName(Stage::kExecute), "execute");
}

TEST(TraceContextStress, ContextsAreThreadLocal) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 2000; ++i) {
        ScopedTrace trace;
        ASSERT_TRUE(trace.owner());
        trace.context()->Add(Stage::kExecute, t + 1);
        {
          SpanTimer timer(Stage::kCacheLookup);
        }
        ASSERT_EQ(trace.context()->span_us(Stage::kExecute), t + 1);
      }
      ASSERT_EQ(TraceContext::Current(), nullptr);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace obs
}  // namespace crimson
