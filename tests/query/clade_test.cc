#include "query/clade.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "labeling/layered_dewey.h"
#include "query/lca.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

class CladeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    scheme_ = std::make_unique<LayeredDeweyScheme>(3);
    ASSERT_TRUE(scheme_->Build(tree_).ok());
  }
  PhyloTree tree_;
  std::unique_ptr<LayeredDeweyScheme> scheme_;
};

TEST_F(CladeTest, LcaOfSetFoldsCorrectly) {
  NodeId lla = tree_.FindByName("Lla");
  NodeId spy = tree_.FindByName("Spy");
  NodeId bha = tree_.FindByName("Bha");
  EXPECT_EQ(*LcaOfSet(*scheme_, {lla}), lla);
  EXPECT_EQ(*LcaOfSet(*scheme_, {lla, spy}), tree_.parent(lla));
  EXPECT_EQ(*LcaOfSet(*scheme_, {lla, spy, bha}),
            tree_.parent(tree_.parent(lla)));
  EXPECT_EQ(*LcaOfSet(*scheme_, {lla, spy, bha, tree_.FindByName("Syn")}),
            tree_.root());
  EXPECT_TRUE(LcaOfSet(*scheme_, {}).status().IsInvalidArgument());
}

TEST_F(CladeTest, MinimalCladeOfSiblings) {
  NodeId lla = tree_.FindByName("Lla");
  NodeId spy = tree_.FindByName("Spy");
  auto clade = MinimalSpanningClade(tree_, *scheme_, {lla, spy});
  ASSERT_TRUE(clade.ok());
  EXPECT_EQ(clade->root, tree_.parent(lla));
  // x's subtree: x, Lla, Spy.
  EXPECT_EQ(clade->nodes.size(), 3u);
  std::set<NodeId> nodes(clade->nodes.begin(), clade->nodes.end());
  EXPECT_TRUE(nodes.count(lla));
  EXPECT_TRUE(nodes.count(spy));
}

TEST_F(CladeTest, MinimalCladeSpanningRoot) {
  auto clade = MinimalSpanningClade(
      tree_, *scheme_, {tree_.FindByName("Lla"), tree_.FindByName("Syn")});
  ASSERT_TRUE(clade.ok());
  EXPECT_EQ(clade->root, tree_.root());
  EXPECT_EQ(clade->nodes.size(), tree_.size());
}

TEST(CladePropertyTest, CladeIsExactlyTheLcaSubtree) {
  Rng rng(61);
  PhyloTree t = MakeRandomBinary(300, &rng);
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(t).ok());
  std::vector<NodeId> leaves = t.Leaves();
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<NodeId> sample;
    for (uint64_t i : rng.SampleWithoutReplacement(leaves.size(), 5)) {
      sample.push_back(leaves[i]);
    }
    auto clade = MinimalSpanningClade(t, scheme, sample);
    ASSERT_TRUE(clade.ok());
    // Every sampled leaf is inside; every clade node descends from root.
    std::set<NodeId> nodes(clade->nodes.begin(), clade->nodes.end());
    for (NodeId s : sample) EXPECT_TRUE(nodes.count(s));
    for (NodeId n : clade->nodes) {
      EXPECT_TRUE(t.IsAncestorOrSelf(clade->root, n));
    }
    // Minimality: no child of the clade root contains all samples.
    for (NodeId c = t.first_child(clade->root); c != kNoNode;
         c = t.next_sibling(c)) {
      bool contains_all = true;
      for (NodeId s : sample) {
        if (!t.IsAncestorOrSelf(c, s)) {
          contains_all = false;
          break;
        }
      }
      EXPECT_FALSE(contains_all);
    }
  }
}

}  // namespace
}  // namespace crimson
