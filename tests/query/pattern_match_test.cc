#include "query/pattern_match.h"

#include <gtest/gtest.h>

#include "labeling/layered_dewey.h"
#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

class PatternMatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    scheme_ = std::make_unique<LayeredDeweyScheme>(3);
    ASSERT_TRUE(scheme_->Build(tree_).ok());
    projector_ = std::make_unique<TreeProjector>(&tree_, scheme_.get());
    matcher_ = std::make_unique<PatternMatcher>(projector_.get());
  }

  PhyloTree Pattern(const std::string& newick) {
    auto t = ParseNewick(newick);
    EXPECT_TRUE(t.ok()) << t.status();
    return std::move(t).value();
  }

  PhyloTree tree_;
  std::unique_ptr<LayeredDeweyScheme> scheme_;
  std::unique_ptr<TreeProjector> projector_;
  std::unique_ptr<PatternMatcher> matcher_;
};

TEST_F(PatternMatchTest, PaperFigure2PatternMatches) {
  // "the tree pattern shown in Figure 2 will match the tree shown in
  //  Figure 1"
  PhyloTree pattern =
      Pattern("((Bha:1.5,Lla:1.5):0.75,Syn:2.5);");
  auto m = matcher_->Match(pattern, 1e-9, /*match_weights=*/true);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->exact);
}

TEST_F(PatternMatchTest, TopologySwapDoesNotMatch) {
  // Exchanging species across clades (Lla <-> Syn) breaks the match.
  PhyloTree pattern =
      Pattern("((Bha:1.5,Syn:1.5):0.75,Lla:2.5);");
  auto m = matcher_->Match(pattern, 1e-9, /*match_weights=*/false);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->exact);
}

TEST_F(PatternMatchTest, WrongWeightsFailOnlyWeightedMatch) {
  PhyloTree pattern = Pattern("((Bha:9,Lla:9):9,Syn:9);");
  auto weighted = matcher_->Match(pattern, 1e-9, /*match_weights=*/true);
  ASSERT_TRUE(weighted.ok());
  EXPECT_FALSE(weighted->exact);
  auto topo = matcher_->Match(pattern, 1e-9, /*match_weights=*/false);
  ASSERT_TRUE(topo.ok());
  EXPECT_TRUE(topo->exact);
}

TEST_F(PatternMatchTest, ChildOrderIsIrrelevant) {
  PhyloTree pattern =
      Pattern("(Syn:2.5,(Lla:1.5,Bha:1.5):0.75);");
  auto m = matcher_->Match(pattern, 1e-9, /*match_weights=*/true);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->exact);
}

TEST_F(PatternMatchTest, UnknownSpeciesReported) {
  PhyloTree pattern = Pattern("((Bha:1,Zzz:1):1,Syn:1);");
  auto m = matcher_->Match(pattern);
  EXPECT_TRUE(m.status().IsNotFound());
}

TEST_F(PatternMatchTest, ProjectionReturnedForScoring) {
  PhyloTree pattern = Pattern("((Bha:1,Syn:1):1,Lla:1);");
  auto m = matcher_->Match(pattern, 1e-9, /*match_weights=*/false);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->exact);
  EXPECT_EQ(m->projection.LeafCount(), 3u);
  EXPECT_NE(m->projection.FindByName("Bha"), kNoNode);
}

TEST_F(PatternMatchTest, FullTreePatternMatchesItself) {
  PhyloTree pattern = MakePaperFigure1Tree();
  auto m = matcher_->Match(pattern, 1e-9, /*match_weights=*/true);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->exact);
}

TEST_F(PatternMatchTest, SiblingPairPattern) {
  PhyloTree pattern = Pattern("(Lla:1,Spy:1);");
  auto m = matcher_->Match(pattern, 1e-9, true);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->exact);
}

}  // namespace
}  // namespace crimson
