#include "query/projection.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "labeling/dewey_scheme.h"
#include "labeling/layered_dewey.h"
#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

class Figure2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    scheme_ = std::make_unique<LayeredDeweyScheme>(3);
    ASSERT_TRUE(scheme_->Build(tree_).ok());
    projector_ = std::make_unique<TreeProjector>(&tree_, scheme_.get());
  }
  PhyloTree tree_;
  std::unique_ptr<LayeredDeweyScheme> scheme_;
  std::unique_ptr<TreeProjector> projector_;
};

TEST_F(Figure2Test, PaperProjectionGolden) {
  // Projecting {Bha, Lla, Syn} from the Fig. 1 tree must produce the
  // Fig. 2 tree exactly: root -> P'(0.75) -> {Bha:1.5, Lla:1.5} and
  // root -> Syn:2.5, with Lla's edge merged (0.5 + 1.0) through the
  // suppressed unary node x.
  auto proj = projector_->Project({tree_.FindByName("Bha"),
                                   tree_.FindByName("Lla"),
                                   tree_.FindByName("Syn")});
  ASSERT_TRUE(proj.ok()) << proj.status();
  ASSERT_EQ(proj->size(), 5u);
  ASSERT_EQ(proj->LeafCount(), 3u);

  NodeId root = proj->root();
  EXPECT_EQ(proj->name(root), "root");
  auto kids = proj->Children(root);
  ASSERT_EQ(kids.size(), 2u);

  NodeId syn = proj->FindByName("Syn");
  ASSERT_NE(syn, kNoNode);
  EXPECT_EQ(proj->parent(syn), root);
  EXPECT_DOUBLE_EQ(proj->edge_length(syn), 2.5);

  NodeId bha = proj->FindByName("Bha");
  NodeId lla = proj->FindByName("Lla");
  ASSERT_NE(bha, kNoNode);
  ASSERT_NE(lla, kNoNode);
  ASSERT_EQ(proj->parent(bha), proj->parent(lla));
  NodeId p = proj->parent(bha);
  EXPECT_EQ(proj->parent(p), root);
  EXPECT_DOUBLE_EQ(proj->edge_length(p), 0.75);
  EXPECT_DOUBLE_EQ(proj->edge_length(bha), 1.5);
  EXPECT_DOUBLE_EQ(proj->edge_length(lla), 1.5);  // merged 0.5 + 1.0
}

TEST_F(Figure2Test, ProjectionMatchesExpectedNewick) {
  auto proj = projector_->Project({tree_.FindByName("Bha"),
                                   tree_.FindByName("Lla"),
                                   tree_.FindByName("Syn")});
  ASSERT_TRUE(proj.ok());
  auto expected = ParseNewick("((Lla:1.5,Bha:1.5):0.75,Syn:2.5)root;");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(PhyloTree::Equal(*proj, *expected, 1e-9, /*ordered=*/false));
}

TEST_F(Figure2Test, SingleLeafProjection) {
  auto proj = projector_->Project({tree_.FindByName("Spy")});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->size(), 1u);
  EXPECT_EQ(proj->name(proj->root()), "Spy");
}

TEST_F(Figure2Test, TwoLeafProjection) {
  auto proj =
      projector_->Project({tree_.FindByName("Lla"), tree_.FindByName("Spy")});
  ASSERT_TRUE(proj.ok());
  // Root is the LCA x (unnamed); both edges length 1.
  ASSERT_EQ(proj->size(), 3u);
  EXPECT_DOUBLE_EQ(proj->edge_length(proj->FindByName("Lla")), 1.0);
  EXPECT_DOUBLE_EQ(proj->edge_length(proj->FindByName("Spy")), 1.0);
}

TEST_F(Figure2Test, DuplicatesIgnored) {
  NodeId bha = tree_.FindByName("Bha");
  auto proj = projector_->Project({bha, bha, tree_.FindByName("Syn"), bha});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->LeafCount(), 2u);
}

TEST_F(Figure2Test, EmptyProjection) {
  auto proj = projector_->Project({});
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj->empty());
}

TEST_F(Figure2Test, NonLeafRejected) {
  NodeId x = tree_.parent(tree_.FindByName("Lla"));
  auto proj = projector_->Project({x, tree_.FindByName("Syn")});
  EXPECT_TRUE(proj.status().IsInvalidArgument());
  EXPECT_TRUE(projector_->Project({9999}).status().IsInvalidArgument());
}

TEST_F(Figure2Test, AllLeavesProjectionKeepsTopology) {
  std::vector<NodeId> all = tree_.Leaves();
  auto proj = projector_->Project(all);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->LeafCount(), 5u);
  // Fig. 1 has no unary nodes, so the projection is the whole tree.
  EXPECT_EQ(proj->size(), tree_.size());
  EXPECT_TRUE(PhyloTree::Equal(*proj, tree_, 1e-9, /*ordered=*/false));
}

// Properties that must hold for any sample from any tree.
class ProjectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionPropertyTest, InvariantsOnRandomSamples) {
  Rng rng(4242 + static_cast<uint64_t>(GetParam()));
  PhyloTree t = MakeRandomBinary(400, &rng);
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(t).ok());
  TreeProjector projector(&t, &scheme);
  std::vector<double> weights = t.RootPathWeights();
  std::vector<NodeId> leaves = t.Leaves();

  size_t k = static_cast<size_t>(GetParam());
  std::vector<uint64_t> pick = rng.SampleWithoutReplacement(leaves.size(), k);
  std::vector<NodeId> sample;
  std::set<std::string> sample_names;
  for (uint64_t i : pick) {
    sample.push_back(leaves[i]);
    sample_names.insert(std::string(t.name(leaves[i])));
  }
  auto proj = projector.Project(sample);
  ASSERT_TRUE(proj.ok()) << proj.status();

  // (1) Leaf set preserved exactly.
  std::set<std::string> proj_names;
  for (NodeId n : proj->Leaves()) proj_names.insert(std::string(proj->name(n)));
  EXPECT_EQ(proj_names, sample_names);

  // (2) Every internal node has out-degree >= 2 (paper definition).
  for (NodeId n = 0; n < proj->size(); ++n) {
    if (!proj->is_leaf(n)) EXPECT_GE(proj->OutDegree(n), 2);
  }

  // (3) Edge weights are path-weight differences: each projected
  // leaf's root-path weight equals its original weight minus the
  // projection root's original weight.
  std::vector<double> proj_weights = proj->RootPathWeights();
  // Map back by name.
  double root_offset = -1;
  for (NodeId orig : sample) {
    NodeId pn = proj->FindByName(t.name(orig));
    ASSERT_NE(pn, kNoNode);
    double offset = weights[orig] - proj_weights[pn];
    if (root_offset < 0) {
      root_offset = offset;
    } else {
      EXPECT_NEAR(offset, root_offset, 1e-9);
    }
  }

  // (4) Valid tree structure.
  EXPECT_TRUE(proj->Validate().ok());

  // (5) Idempotence: projecting the projection's full leaf set from
  // the original again yields an equal tree.
  auto proj2 = projector.Project(sample);
  ASSERT_TRUE(proj2.ok());
  EXPECT_TRUE(PhyloTree::Equal(*proj, *proj2, 1e-9, /*ordered=*/true));
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, ProjectionPropertyTest,
                         ::testing::Values(2, 3, 5, 16, 64, 200, 400));

TEST(ProjectionSchemesTest, DeweyAndLayeredProjectIdentically) {
  Rng rng(77);
  PhyloTree t = MakeRandomBinary(200, &rng);
  DeweyScheme dewey;
  LayeredDeweyScheme layered(4);
  ASSERT_TRUE(dewey.Build(t).ok());
  ASSERT_TRUE(layered.Build(t).ok());
  TreeProjector pd(&t, &dewey);
  TreeProjector pl(&t, &layered);
  std::vector<NodeId> leaves = t.Leaves();
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<NodeId> sample;
    for (uint64_t i : rng.SampleWithoutReplacement(leaves.size(), 20)) {
      sample.push_back(leaves[i]);
    }
    auto a = pd.Project(sample);
    auto b = pl.Project(sample);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(PhyloTree::Equal(*a, *b, 1e-9, /*ordered=*/true));
  }
}

TEST(ProjectionDeepTest, CaterpillarProjectionSumsEdges) {
  // Projection from a deep caterpillar exercises long merged paths.
  PhyloTree t = MakeCaterpillar(5000, 0.5);
  LayeredDeweyScheme scheme(8);
  ASSERT_TRUE(scheme.Build(t).ok());
  TreeProjector projector(&t, &scheme);
  NodeId a = t.FindByName("L0");
  NodeId b = t.FindByName("L2500");
  NodeId c = t.FindByName("L5000");
  auto proj = projector.Project({a, b, c});
  ASSERT_TRUE(proj.ok());
  ASSERT_EQ(proj->LeafCount(), 3u);
  // The internal node above L2500 is the chain point 2500 edges below
  // the root (each edge 0.5); the long unary chain merges into one edge.
  NodeId pb = proj->FindByName("L2500");
  NodeId m = proj->parent(pb);
  EXPECT_NEAR(proj->edge_length(m), 2500 * 0.5, 1e-6);
  EXPECT_NEAR(proj->edge_length(pb), 0.5, 1e-9);
  // L5000 hangs 2500 merged edges below the same point.
  EXPECT_NEAR(proj->edge_length(proj->FindByName("L5000")), 2500 * 0.5,
              1e-6);
}

}  // namespace
}  // namespace crimson
