#include "query/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tree/tree_builders.h"

namespace crimson {
namespace {

class PaperSamplingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = MakePaperFigure1Tree();
    sampler_ = std::make_unique<Sampler>(&tree_);
  }
  PhyloTree tree_;
  std::unique_ptr<Sampler> sampler_;
};

TEST_F(PaperSamplingTest, TimeFrontierGolden) {
  // Paper §2.2: at evolutionary distance 1 the frontier is exactly
  // {Bha, x, Syn, Bsu} where x is the parent of Lla and Spy.
  std::vector<NodeId> frontier = sampler_->TimeFrontier(1.0);
  NodeId x = tree_.parent(tree_.FindByName("Lla"));
  std::set<NodeId> expect = {tree_.FindByName("Bha"), x,
                             tree_.FindByName("Syn"),
                             tree_.FindByName("Bsu")};
  EXPECT_EQ(std::set<NodeId>(frontier.begin(), frontier.end()), expect);
}

TEST_F(PaperSamplingTest, TimeSampleMatchesPaperOutcomes) {
  // "The result is {Bha, Lla, Syn, BSU} or {Bha, Spy, Syn, BSU}."
  Rng rng(9);
  for (int rep = 0; rep < 50; ++rep) {
    auto sample = sampler_->SampleWithRespectToTime(4, 1.0, &rng);
    ASSERT_TRUE(sample.ok()) << sample.status();
    std::set<std::string> names;
    for (NodeId n : *sample) names.insert(std::string(tree_.name(n)));
    std::set<std::string> a = {"Bha", "Lla", "Syn", "Bsu"};
    std::set<std::string> b = {"Bha", "Spy", "Syn", "Bsu"};
    EXPECT_TRUE(names == a || names == b)
        << "unexpected sample in rep " << rep;
  }
}

TEST_F(PaperSamplingTest, BothPaperOutcomesOccur) {
  Rng rng(10);
  bool saw_lla = false, saw_spy = false;
  for (int rep = 0; rep < 200 && !(saw_lla && saw_spy); ++rep) {
    auto sample = sampler_->SampleWithRespectToTime(4, 1.0, &rng);
    ASSERT_TRUE(sample.ok());
    for (NodeId n : *sample) {
      if (tree_.name(n) == "Lla") saw_lla = true;
      if (tree_.name(n) == "Spy") saw_spy = true;
    }
  }
  EXPECT_TRUE(saw_lla);
  EXPECT_TRUE(saw_spy);
}

TEST_F(PaperSamplingTest, FrontierMinimality) {
  // Every frontier node's weight exceeds t, its parent's does not.
  std::vector<double> w = tree_.RootPathWeights();
  for (double t : {0.0, 0.5, 1.0, 2.0, 2.4}) {
    for (NodeId n : sampler_->TimeFrontier(t)) {
      EXPECT_GT(w[n], t);
      if (n != tree_.root()) EXPECT_LE(w[tree_.parent(n)], t);
    }
  }
}

TEST_F(PaperSamplingTest, FrontierBeyondTreeIsEmpty) {
  EXPECT_TRUE(sampler_->TimeFrontier(100.0).empty());
  Rng rng(11);
  EXPECT_TRUE(
      sampler_->SampleWithRespectToTime(2, 100.0, &rng).status().IsNotFound());
}

TEST_F(PaperSamplingTest, UniformSampleBasics) {
  Rng rng(12);
  auto s = sampler_->SampleUniform(3, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 3u);
  std::set<NodeId> uniq(s->begin(), s->end());
  EXPECT_EQ(uniq.size(), 3u);
  for (NodeId n : *s) EXPECT_TRUE(tree_.is_leaf(n));
  // Oversampling rejected.
  EXPECT_TRUE(sampler_->SampleUniform(6, &rng).status().IsInvalidArgument());
  // Sampling everything returns all leaves.
  auto all = sampler_->SampleUniform(5, &rng);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 5u);
}

TEST_F(PaperSamplingTest, LeavesUnder) {
  NodeId p = tree_.parent(tree_.parent(tree_.FindByName("Lla")));
  auto leaves = sampler_->LeavesUnder(p);
  std::set<std::string> names;
  for (NodeId n : leaves) names.insert(std::string(tree_.name(n)));
  EXPECT_EQ(names, (std::set<std::string>{"Bha", "Lla", "Spy"}));
}

class SamplingPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SamplingPropertyTest, TimeSamplingOnYuleLikeTree) {
  Rng rng(500 + GetParam());
  PhyloTree t = MakeRandomBinary(500, &rng);
  Sampler sampler(&t);
  std::vector<double> w = t.RootPathWeights();
  double max_w = *std::max_element(w.begin(), w.end());
  double time = max_w * 0.2;
  size_t k = GetParam();
  auto sample = sampler.SampleWithRespectToTime(k, time, &rng);
  ASSERT_TRUE(sample.ok()) << sample.status();
  EXPECT_EQ(sample->size(), k);
  std::set<NodeId> uniq(sample->begin(), sample->end());
  EXPECT_EQ(uniq.size(), k) << "sample has duplicates";
  for (NodeId n : *sample) {
    EXPECT_TRUE(t.is_leaf(n));
    EXPECT_GT(w[n], time) << "sampled leaf above the time frontier";
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SamplingPropertyTest,
                         ::testing::Values(1, 4, 16, 64, 250));

TEST(SamplingDistributionTest, UniformSamplingIsRoughlyUniform) {
  PhyloTree t = MakeBalancedBinary(5);  // 32 leaves
  Sampler sampler(&t);
  Rng rng(13);
  std::map<NodeId, int> counts;
  const int reps = 4000;
  for (int i = 0; i < reps; ++i) {
    auto sample = sampler.SampleUniform(4, &rng);
    ASSERT_TRUE(sample.ok());
    for (NodeId n : *sample) ++counts[n];
  }
  // Each leaf expected reps * 4 / 32 = 500 hits; allow generous slack.
  for (const auto& [leaf, count] : counts) {
    EXPECT_GT(count, 350) << t.name(leaf);
    EXPECT_LT(count, 650) << t.name(leaf);
  }
  EXPECT_EQ(counts.size(), 32u);
}

}  // namespace
}  // namespace crimson
