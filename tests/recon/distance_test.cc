#include "recon/distance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crimson {
namespace {

TEST(PDistanceTest, CountsMismatches) {
  EXPECT_DOUBLE_EQ(*PDistance("ACGT", "ACGT"), 0.0);
  EXPECT_DOUBLE_EQ(*PDistance("ACGT", "ACGA"), 0.25);
  EXPECT_DOUBLE_EQ(*PDistance("AAAA", "TTTT"), 1.0);
  EXPECT_FALSE(PDistance("ACG", "ACGT").ok());
  EXPECT_FALSE(PDistance("", "").ok());
}

TEST(JC69CorrectionTest, KnownValues) {
  // d = -3/4 ln(1 - 4p/3); p=0.1 -> ~0.10732563.
  std::string a(100, 'A');
  std::string b = a;
  for (int i = 0; i < 10; ++i) b[i] = 'C';
  auto d = CorrectedDistance(a, b, DistanceCorrection::kJC69);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, -0.75 * std::log(1.0 - 4.0 * 0.1 / 3.0), 1e-12);
  // Correction always >= p.
  EXPECT_GT(*d, 0.1);
}

TEST(JC69CorrectionTest, SaturationClamped) {
  std::string a(100, 'A');
  std::string b(100, 'T');  // p = 1.0 > 0.75: correction diverges
  auto d = CorrectedDistance(a, b, DistanceCorrection::kJC69, 5.0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 5.0);
}

TEST(K80CorrectionTest, SeparatesTransitionsAndTransversions) {
  // 10% transitions (A->G), 5% transversions (A->C) over 200 sites.
  std::string a(200, 'A');
  std::string b = a;
  for (int i = 0; i < 20; ++i) b[i] = 'G';          // transitions
  for (int i = 20; i < 30; ++i) b[i] = 'C';         // transversions
  auto d = CorrectedDistance(a, b, DistanceCorrection::kK80);
  ASSERT_TRUE(d.ok());
  double p = 0.1, q = 0.05;
  double expect = -0.5 * std::log(1 - 2 * p - q) - 0.25 * std::log(1 - 2 * q);
  EXPECT_NEAR(*d, expect, 1e-12);
}

TEST(K80CorrectionTest, EqualSequencesZero) {
  std::string a(50, 'G');
  EXPECT_DOUBLE_EQ(*CorrectedDistance(a, a, DistanceCorrection::kK80), 0.0);
}

TEST(DistanceMatrixTest, SymmetricWithZeroDiagonal) {
  std::map<std::string, std::string> seqs = {
      {"A", "AAAA"}, {"B", "AAAT"}, {"C", "TTTT"}};
  auto m = ComputeDistanceMatrix(seqs, DistanceCorrection::kPDistance);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 3u);
  EXPECT_EQ(m->names, (std::vector<std::string>{"A", "B", "C"}));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m->d[i][i], 0.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m->d[i][j], m->d[j][i]);
    }
  }
  EXPECT_DOUBLE_EQ(m->d[0][1], 0.25);
  EXPECT_DOUBLE_EQ(m->d[0][2], 1.0);
  EXPECT_DOUBLE_EQ(m->d[1][2], 0.75);
}

TEST(DistanceMatrixTest, ErrorsPropagated) {
  std::map<std::string, std::string> one = {{"A", "ACGT"}};
  EXPECT_FALSE(ComputeDistanceMatrix(one, DistanceCorrection::kJC69).ok());
  std::map<std::string, std::string> ragged = {{"A", "ACGT"}, {"B", "AC"}};
  EXPECT_FALSE(ComputeDistanceMatrix(ragged, DistanceCorrection::kJC69).ok());
}

}  // namespace
}  // namespace crimson
