#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "recon/nj.h"
#include "recon/rf_distance.h"
#include "recon/upgma.h"
#include "sim/tree_sim.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

/// Path-length (additive) distance matrix of a tree's leaves.
DistanceMatrix AdditiveMatrix(const PhyloTree& t) {
  DistanceMatrix m;
  std::vector<NodeId> leaves = t.Leaves();
  std::vector<double> w = t.RootPathWeights();
  std::vector<uint32_t> depth = t.Depths();
  for (NodeId l : leaves) m.names.emplace_back(t.name(l));
  size_t n = leaves.size();
  m.d.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      NodeId lca = t.NaiveLca(leaves[i], leaves[j]);
      double dist = w[leaves[i]] + w[leaves[j]] - 2 * w[lca];
      m.d[i][j] = m.d[j][i] = dist;
    }
  }
  return m;
}

TEST(NjTest, RecoversKnownQuartet) {
  // Classic additive example: ((A,B),(C,D)) with internal edge 1.
  // d(A,B)=2, d(C,D)=2, cross distances 5 via the middle edge.
  DistanceMatrix m;
  m.names = {"A", "B", "C", "D"};
  m.d = {{0, 2, 5, 5}, {2, 0, 5, 5}, {5, 5, 0, 2}, {5, 5, 2, 0}};
  auto t = NeighborJoining(m);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->LeafCount(), 4u);
  // A,B must be siblings (and C,D): check via RF against the truth.
  PhyloTree truth;
  NodeId r = truth.AddRoot("");
  NodeId ab = truth.AddChild(r, "", 0.5);
  NodeId cd = truth.AddChild(r, "", 0.5);
  truth.AddChild(ab, "A", 1.0);
  truth.AddChild(ab, "B", 1.0);
  truth.AddChild(cd, "C", 1.0);
  truth.AddChild(cd, "D", 1.0);
  auto rf = RobinsonFoulds(*t, truth);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->distance, 0u);
}

TEST(NjTest, TwoAndThreeTaxa) {
  DistanceMatrix two;
  two.names = {"A", "B"};
  two.d = {{0, 3}, {3, 0}};
  auto t2 = NeighborJoining(two);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->LeafCount(), 2u);
  // Total path length A..B preserved.
  std::vector<double> w = t2->RootPathWeights();
  EXPECT_NEAR(w[t2->FindByName("A")] + w[t2->FindByName("B")], 3.0, 1e-9);

  DistanceMatrix three;
  three.names = {"A", "B", "C"};
  three.d = {{0, 2, 3}, {2, 0, 3}, {3, 3, 0}};
  auto t3 = NeighborJoining(three);
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->LeafCount(), 3u);
}

TEST(NjTest, OneTaxonRejected) {
  DistanceMatrix m;
  m.names = {"A"};
  m.d = {{0}};
  EXPECT_FALSE(NeighborJoining(m).ok());
  EXPECT_FALSE(Upgma(m).ok());
}

class NjConsistencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(NjConsistencyTest, RecoversAdditiveTreesExactly) {
  // NJ is guaranteed to reconstruct the true topology from exact
  // additive distances -- the core correctness property.
  Rng rng(900 + GetParam());
  BirthDeathOptions opts;
  opts.n_leaves = GetParam();
  opts.death_rate = 0.3;
  auto truth = SimulateBirthDeath(opts, &rng);
  ASSERT_TRUE(truth.ok());
  PerturbBranchRates(&*truth, 3.0, &rng);  // break the clock
  DistanceMatrix m = AdditiveMatrix(*truth);
  auto recon = NeighborJoining(m);
  ASSERT_TRUE(recon.ok()) << recon.status();
  auto rf = RobinsonFoulds(*recon, *truth);
  ASSERT_TRUE(rf.ok()) << rf.status();
  EXPECT_EQ(rf->distance, 0u)
      << "NJ failed to recover an additive tree of " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, NjConsistencyTest,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

TEST(UpgmaTest, RecoversUltrametricTree) {
  // UPGMA is consistent on ultrametric (clock-like) distances.
  Rng rng(950);
  YuleOptions opts;
  opts.n_leaves = 32;
  auto truth = SimulateYule(opts, &rng);
  ASSERT_TRUE(truth.ok());
  DistanceMatrix m = AdditiveMatrix(*truth);
  auto recon = Upgma(m);
  ASSERT_TRUE(recon.ok());
  auto rf = RobinsonFoulds(*recon, *truth);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->distance, 0u);
}

TEST(UpgmaTest, OutputIsUltrametric) {
  Rng rng(951);
  BirthDeathOptions opts;
  opts.n_leaves = 20;
  auto truth = SimulateBirthDeath(opts, &rng);
  ASSERT_TRUE(truth.ok());
  PerturbBranchRates(&*truth, 3.0, &rng);
  auto recon = Upgma(AdditiveMatrix(*truth));
  ASSERT_TRUE(recon.ok());
  std::vector<double> w = recon->RootPathWeights();
  double h = -1;
  for (NodeId n : recon->Leaves()) {
    if (h < 0) h = w[n];
    EXPECT_NEAR(w[n], h, 1e-9);
  }
}

TEST(UpgmaTest, FailsOnNonClockData) {
  // The textbook UPGMA failure: rate variation makes the closest pair
  // (B,C) straddle the true split AB|CD, so average-linkage joins
  // across it while NJ (additive-consistent) does not.
  // Truth: ((A:5,B:0.5):0.5,(C:0.5,D:5):0.5).
  PhyloTree truth;
  NodeId r = truth.AddRoot("");
  NodeId ab = truth.AddChild(r, "", 0.5);
  NodeId cd = truth.AddChild(r, "", 0.5);
  truth.AddChild(ab, "A", 5.0);
  truth.AddChild(ab, "B", 0.5);
  truth.AddChild(cd, "C", 0.5);
  truth.AddChild(cd, "D", 5.0);
  DistanceMatrix m = AdditiveMatrix(truth);
  auto nj = NeighborJoining(m);
  auto up = Upgma(m);
  ASSERT_TRUE(nj.ok() && up.ok());
  auto rf_nj = RobinsonFoulds(*nj, truth);
  auto rf_up = RobinsonFoulds(*up, truth);
  ASSERT_TRUE(rf_nj.ok() && rf_up.ok());
  EXPECT_EQ(rf_nj->distance, 0u) << "NJ handles non-clock data";
  EXPECT_GT(rf_up->distance, 0u) << "UPGMA should be fooled here";
}

TEST(ReconTest, BranchLengthsApproximatelyRecovered) {
  DistanceMatrix m;
  m.names = {"A", "B", "C", "D"};
  m.d = {{0, 2, 5, 5}, {2, 0, 5, 5}, {5, 5, 0, 2}, {5, 5, 2, 0}};
  auto t = NeighborJoining(m);
  ASSERT_TRUE(t.ok());
  // Pairwise path lengths in the reconstruction match the input matrix.
  std::vector<double> w = t->RootPathWeights();
  auto path = [&](const char* a, const char* b) {
    NodeId na = t->FindByName(a), nb = t->FindByName(b);
    NodeId lca = t->NaiveLca(na, nb);
    return w[na] + w[nb] - 2 * w[lca];
  };
  EXPECT_NEAR(path("A", "B"), 2.0, 1e-9);
  EXPECT_NEAR(path("C", "D"), 2.0, 1e-9);
  EXPECT_NEAR(path("A", "C"), 5.0, 1e-9);
  EXPECT_NEAR(path("B", "D"), 5.0, 1e-9);
}

}  // namespace
}  // namespace crimson
