#include "recon/rf_distance.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

PhyloTree T(const char* newick) {
  auto t = ParseNewick(newick);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(RfTest, IdenticalTreesZero) {
  PhyloTree a = T("((A,B),(C,D));");
  PhyloTree b = T("((A,B),(C,D));");
  auto rf = RobinsonFoulds(a, b);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->distance, 0u);
  EXPECT_DOUBLE_EQ(rf->normalized, 0.0);
}

TEST(RfTest, ChildOrderAndRootPlacementIrrelevant) {
  // Unrooted RF: rotations and rerootings along the same topology agree.
  PhyloTree a = T("((A,B),(C,D));");
  PhyloTree b = T("((D,C),(B,A));");
  auto rf = RobinsonFoulds(a, b);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->distance, 0u);
  PhyloTree c = T("(A,(B,(C,D)));");  // different rooting, same splits
  auto rf2 = RobinsonFoulds(a, c);
  ASSERT_TRUE(rf2.ok());
  EXPECT_EQ(rf2->distance, 0u);
}

TEST(RfTest, MaximallyDifferentQuartets) {
  PhyloTree a = T("((A,B),(C,D));");  // split AB|CD
  PhyloTree b = T("((A,C),(B,D));");  // split AC|BD
  auto rf = RobinsonFoulds(a, b);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->splits_a, 1u);
  EXPECT_EQ(rf->splits_b, 1u);
  EXPECT_EQ(rf->distance, 2u);
  EXPECT_DOUBLE_EQ(rf->normalized, 1.0);
}

TEST(RfTest, PartialOverlap) {
  PhyloTree a = T("(((A,B),C),(D,E));");  // splits AB|..., ABC|DE
  PhyloTree b = T("(((A,B),D),(C,E));");  // splits AB|..., ABD|CE
  auto rf = RobinsonFoulds(a, b);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->splits_a, 2u);
  EXPECT_EQ(rf->splits_b, 2u);
  EXPECT_EQ(rf->distance, 2u);  // AB shared; the other two differ
  EXPECT_DOUBLE_EQ(rf->normalized, 0.5);
}

TEST(RfTest, StarTreeHasNoSplits) {
  PhyloTree star = T("(A,B,C,D,E);");
  PhyloTree resolved = T("((A,B),(C,(D,E)));");
  auto rf = RobinsonFoulds(star, resolved);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->splits_a, 0u);
  EXPECT_EQ(rf->splits_b, 2u);
  EXPECT_EQ(rf->distance, 2u);
  auto self = RobinsonFoulds(star, star);
  ASSERT_TRUE(self.ok());
  EXPECT_DOUBLE_EQ(self->normalized, 0.0);  // 0/0 convention
}

TEST(RfTest, MismatchedLeafSetsRejected) {
  PhyloTree a = T("((A,B),(C,D));");
  PhyloTree b = T("((A,B),(C,E));");
  EXPECT_FALSE(RobinsonFoulds(a, b).ok());
  PhyloTree c = T("((A,B),C);");
  EXPECT_FALSE(RobinsonFoulds(a, c).ok());
}

TEST(RfTest, DuplicateLeafNamesRejected) {
  PhyloTree a = T("((A,A),(C,D));");
  PhyloTree b = T("((A,C),(A,D));");
  EXPECT_FALSE(RobinsonFoulds(a, b).ok());
}

TEST(RfTest, CaterpillarVersusBalancedIsFar) {
  // 32-leaf caterpillar vs balanced tree share very few splits.
  PhyloTree cat;
  {
    NodeId cur = cat.AddRoot("");
    for (int i = 0; i < 31; ++i) {
      cat.AddChild(cur, "L" + std::to_string(i), 1.0);
      cur = cat.AddChild(cur, "", 1.0);
    }
    cat.set_name(cur, "L31");
  }
  PhyloTree bal = MakeBalancedBinary(5);
  auto rf = RobinsonFoulds(cat, bal);
  ASSERT_TRUE(rf.ok());
  EXPECT_GT(rf->normalized, 0.5);
  EXPECT_LE(rf->normalized, 1.0);
}

TEST(RfTest, RandomTreeSelfDistanceZeroAfterRewrite) {
  Rng rng(71);
  PhyloTree t = MakeRandomBinary(100, &rng);
  auto reparsed = ParseNewick(WriteNewick(t));
  ASSERT_TRUE(reparsed.ok());
  auto rf = RobinsonFoulds(t, *reparsed);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->distance, 0u);
}

TEST(RfTest, SymmetricInArguments) {
  Rng rng(72);
  PhyloTree a = MakeRandomBinary(64, &rng);
  PhyloTree b = MakeRandomBinary(64, &rng);
  // Same leaf names by construction (L0..L63).
  auto ab = RobinsonFoulds(a, b);
  auto ba = RobinsonFoulds(b, a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_EQ(ab->distance, ba->distance);
  EXPECT_DOUBLE_EQ(ab->normalized, ba->normalized);
}

}  // namespace
}  // namespace crimson
