// Brute-force differential tests for the two scores experiments rank
// algorithms by. RfDistance is checked against a set-of-leaf-sets
// bipartition oracle (explicit std::set enumeration, complement
// canonicalization); TripletDistance against an
// ancestry-of-pairwise-LCAs oracle built on PhyloTree::NaiveLca. Both
// run over random (multifurcating) trees with <= 12 leaves, where the
// O(2^n)/O(k^3) enumerations are exact and cheap, plus hand-computed
// fixed cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "recon/rf_distance.h"
#include "recon/triplet.h"
#include "tree/newick.h"
#include "tree/phylo_tree.h"

namespace crimson {
namespace {

// -- random tree generation -------------------------------------------------

/// Attaches a random subtree over `names` under `parent`: leaves for
/// singletons, otherwise an unnamed internal node with 2 or sometimes
/// 3 children over a random partition (so multifurcations occur).
void AttachRandom(PhyloTree* tree, NodeId parent,
                  std::vector<std::string> names, Rng* rng) {
  if (names.size() == 1) {
    tree->AddChild(parent, names[0], 1.0 + rng->NextDouble());
    return;
  }
  rng->Shuffle(&names);
  size_t groups = 2;
  if (names.size() >= 3 && rng->OneIn(3)) groups = 3;
  // groups-1 distinct cut points inside [1, size-1] split the shuffled
  // names into non-empty slices.
  std::vector<uint64_t> cuts =
      rng->SampleWithoutReplacement(names.size() - 1, groups - 1);
  for (uint64_t& c : cuts) ++c;
  cuts.push_back(0);
  cuts.push_back(names.size());
  std::sort(cuts.begin(), cuts.end());
  for (size_t g = 0; g + 1 < cuts.size(); ++g) {
    std::vector<std::string> slice(names.begin() + cuts[g],
                                   names.begin() + cuts[g + 1]);
    if (slice.size() == 1) {
      tree->AddChild(parent, slice[0], 1.0 + rng->NextDouble());
    } else {
      NodeId inner = tree->AddChild(parent, "", 1.0 + rng->NextDouble());
      AttachRandom(tree, inner, std::move(slice), rng);
    }
  }
}

PhyloTree RandomTree(const std::vector<std::string>& leaves, Rng* rng) {
  PhyloTree tree;
  NodeId root = tree.AddRoot("", 0.0);
  AttachRandom(&tree, root, leaves, rng);
  return tree;
}

std::vector<std::string> LeafNames(size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) names.push_back("L" + std::to_string(i));
  return names;
}

// -- brute-force RF oracle --------------------------------------------------

using Split = std::set<std::string>;

/// All non-trivial bipartitions as explicit leaf-name sets, canonical
/// side = the one NOT containing `ref_leaf`.
std::set<Split> BruteSplits(const PhyloTree& tree, const Split& all_leaves,
                            const std::string& ref_leaf) {
  std::set<Split> out;
  tree.PostOrder([&](NodeId n) {
    if (n == tree.root()) return true;
    Split side;
    tree.PreOrder(
        [&](NodeId m) {
          if (tree.is_leaf(m)) side.insert(std::string(tree.name(m)));
          return true;
        },
        n);
    if (side.size() < 2 || side.size() > all_leaves.size() - 2) return true;
    if (side.count(ref_leaf)) {
      Split flipped;
      std::set_difference(all_leaves.begin(), all_leaves.end(),
                          side.begin(), side.end(),
                          std::inserter(flipped, flipped.end()));
      out.insert(std::move(flipped));
    } else {
      out.insert(std::move(side));
    }
    return true;
  });
  return out;
}

RfResult BruteRf(const PhyloTree& a, const PhyloTree& b) {
  Split all;
  for (NodeId n : a.Leaves()) all.insert(std::string(a.name(n)));
  const std::string& ref_leaf = *all.begin();
  std::set<Split> sa = BruteSplits(a, all, ref_leaf);
  std::set<Split> sb = BruteSplits(b, all, ref_leaf);
  size_t common = 0;
  for (const Split& s : sa) common += sb.count(s);
  RfResult r;
  r.splits_a = sa.size();
  r.splits_b = sb.size();
  r.distance = sa.size() + sb.size() - 2 * common;
  size_t denom = sa.size() + sb.size();
  r.normalized =
      denom == 0 ? 0.0
                 : static_cast<double>(r.distance) / static_cast<double>(denom);
  return r;
}

// -- brute-force triplet oracle ---------------------------------------------

/// Resolves {a,b,c} by LCA ancestry instead of LCA depth: exactly one
/// pairwise LCA can lie strictly below LCA(a,b,c); that pair is the
/// closest. 0: (a,b); 1: (a,c); 2: (b,c); 3: unresolved.
int BruteResolve(const PhyloTree& t, NodeId a, NodeId b, NodeId c) {
  NodeId ab = t.NaiveLca(a, b);
  NodeId ac = t.NaiveLca(a, c);
  NodeId bc = t.NaiveLca(b, c);
  NodeId abc = t.NaiveLca(ab, c);
  if (ab != abc) return 0;
  if (ac != abc) return 1;
  if (bc != abc) return 2;
  return 3;
}

TripletResult BruteTriplets(const PhyloTree& a, const PhyloTree& b) {
  // Shared leaf order: sorted names.
  std::vector<std::string> names;
  for (NodeId n : a.Leaves()) names.emplace_back(a.name(n));
  std::sort(names.begin(), names.end());
  std::vector<NodeId> in_a, in_b;
  for (const std::string& name : names) {
    in_a.push_back(a.FindByName(name));
    in_b.push_back(b.FindByName(name));
  }
  TripletResult r;
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      for (size_t l = j + 1; l < names.size(); ++l) {
        ++r.total;
        if (BruteResolve(a, in_a[i], in_a[j], in_a[l]) !=
            BruteResolve(b, in_b[i], in_b[j], in_b[l])) {
          ++r.differing;
        }
      }
    }
  }
  r.fraction = r.total == 0 ? 0.0
                            : static_cast<double>(r.differing) /
                                  static_cast<double>(r.total);
  return r;
}

// -- the differentials ------------------------------------------------------

TEST(RfOracleTest, RandomTreePairsMatchBruteForce) {
  Rng rng(0x5EED01);
  for (int iter = 0; iter < 200; ++iter) {
    size_t n = 4 + rng.Uniform(9);  // 4..12 leaves
    std::vector<std::string> names = LeafNames(n);
    PhyloTree a = RandomTree(names, &rng);
    PhyloTree b = RandomTree(names, &rng);
    auto fast = RobinsonFoulds(a, b);
    ASSERT_TRUE(fast.ok()) << fast.status();
    RfResult brute = BruteRf(a, b);
    EXPECT_EQ(fast->distance, brute.distance)
        << "iter " << iter << "\nA: " << WriteNewick(a)
        << "\nB: " << WriteNewick(b);
    EXPECT_EQ(fast->splits_a, brute.splits_a) << "iter " << iter;
    EXPECT_EQ(fast->splits_b, brute.splits_b) << "iter " << iter;
    EXPECT_DOUBLE_EQ(fast->normalized, brute.normalized) << "iter " << iter;
  }
}

TEST(RfOracleTest, IdenticalTreesAreDistanceZero) {
  Rng rng(0x5EED02);
  for (int iter = 0; iter < 50; ++iter) {
    size_t n = 4 + rng.Uniform(9);
    PhyloTree a = RandomTree(LeafNames(n), &rng);
    auto rf = RobinsonFoulds(a, a);
    ASSERT_TRUE(rf.ok());
    EXPECT_EQ(rf->distance, 0u);
    EXPECT_EQ(rf->splits_a, rf->splits_b);
  }
}

TEST(RfOracleTest, HandComputedCases) {
  // ((a,b),(c,d)) vs ((a,c),(b,d)): each has one non-trivial split
  // ({a,b} vs {a,c}); they disagree, so distance 2.
  PhyloTree t1 = std::move(ParseNewick("((a,b),(c,d));")).value();
  PhyloTree t2 = std::move(ParseNewick("((a,c),(b,d));")).value();
  auto rf = RobinsonFoulds(t1, t2);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->splits_a, 1u);
  EXPECT_EQ(rf->splits_b, 1u);
  EXPECT_EQ(rf->distance, 2u);
  EXPECT_DOUBLE_EQ(rf->normalized, 1.0);

  // A star tree has no non-trivial splits at all.
  PhyloTree star = std::move(ParseNewick("(a,b,c,d);")).value();
  auto rf_star = RobinsonFoulds(t1, star);
  ASSERT_TRUE(rf_star.ok());
  EXPECT_EQ(rf_star->splits_b, 0u);
  EXPECT_EQ(rf_star->distance, 1u);
}

TEST(TripletOracleTest, RandomTreePairsMatchBruteForce) {
  Rng rng(0x5EED03);
  for (int iter = 0; iter < 200; ++iter) {
    size_t n = 4 + rng.Uniform(9);
    std::vector<std::string> names = LeafNames(n);
    PhyloTree a = RandomTree(names, &rng);
    PhyloTree b = RandomTree(names, &rng);
    auto fast = TripletDistance(a, b);
    ASSERT_TRUE(fast.ok()) << fast.status();
    TripletResult brute = BruteTriplets(a, b);
    EXPECT_EQ(fast->total, brute.total) << "iter " << iter;
    EXPECT_EQ(fast->differing, brute.differing)
        << "iter " << iter << "\nA: " << WriteNewick(a)
        << "\nB: " << WriteNewick(b);
    EXPECT_DOUBLE_EQ(fast->fraction, brute.fraction) << "iter " << iter;
  }
}

TEST(TripletOracleTest, IdenticalTreesHaveNoDifferingTriples) {
  Rng rng(0x5EED04);
  for (int iter = 0; iter < 50; ++iter) {
    size_t n = 4 + rng.Uniform(9);
    PhyloTree a = RandomTree(LeafNames(n), &rng);
    auto td = TripletDistance(a, a);
    ASSERT_TRUE(td.ok());
    size_t k = a.LeafCount();
    EXPECT_EQ(td->total, k * (k - 1) * (k - 2) / 6);
    EXPECT_EQ(td->differing, 0u);
  }
}

TEST(TripletOracleTest, HandComputedCases) {
  // ((a,b),c,d) vs ((a,c),b,d): abc and acd flip between resolved
  // pairs, abd goes resolved -> unresolved, bcd stays unresolved:
  // 3 of 4 triples differ.
  PhyloTree t1 = std::move(ParseNewick("((a,b),c,d);")).value();
  PhyloTree t2 = std::move(ParseNewick("((a,c),b,d);")).value();
  auto td = TripletDistance(t1, t2);
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(td->total, 4u);
  EXPECT_EQ(td->differing, 3u);
  EXPECT_DOUBLE_EQ(td->fraction, 0.75);
}

}  // namespace
}  // namespace crimson
