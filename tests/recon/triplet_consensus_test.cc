#include <gtest/gtest.h>

#include "common/random.h"
#include "recon/consensus.h"
#include "recon/rf_distance.h"
#include "recon/triplet.h"
#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

PhyloTree T(const char* newick) {
  auto t = ParseNewick(newick);
  EXPECT_TRUE(t.ok()) << t.status();
  return std::move(t).value();
}

TEST(TripletTest, IdenticalTreesZero) {
  PhyloTree a = T("((A,B),(C,(D,E)));");
  auto r = TripletDistance(a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total, 10u);  // C(5,3)
  EXPECT_EQ(r->differing, 0u);
}

TEST(TripletTest, SingleSwapCounted) {
  PhyloTree a = T("((A,B),C);");
  PhyloTree b = T("((A,C),B);");
  auto r = TripletDistance(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->total, 1u);
  EXPECT_EQ(r->differing, 1u);
  EXPECT_DOUBLE_EQ(r->fraction, 1.0);
}

TEST(TripletTest, UnresolvedVersusResolved) {
  PhyloTree star = T("(A,B,C);");
  PhyloTree resolved = T("((A,B),C);");
  auto r = TripletDistance(star, resolved);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->differing, 1u);  // unresolved != cherry(A,B)
  auto same = TripletDistance(star, star);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->differing, 0u);
}

TEST(TripletTest, ErrorsOnBadInput) {
  PhyloTree a = T("((A,B),C);");
  PhyloTree b = T("((A,B),D);");
  EXPECT_FALSE(TripletDistance(a, b).ok());
  PhyloTree tiny = T("(A,B);");
  EXPECT_FALSE(TripletDistance(tiny, tiny).ok());
}

TEST(TripletTest, CorrelatesWithTopologicalDisagreement) {
  Rng rng(81);
  PhyloTree a = MakeRandomBinary(30, &rng);
  PhyloTree b = MakeRandomBinary(30, &rng);
  auto same = TripletDistance(a, a);
  auto diff = TripletDistance(a, b);
  ASSERT_TRUE(same.ok() && diff.ok());
  EXPECT_EQ(same->differing, 0u);
  EXPECT_GT(diff->differing, 0u);
}

TEST(ConsensusTest, IdenticalProfileReturnsSameTopology) {
  PhyloTree a = T("((A,B),(C,(D,E)));");
  std::vector<PhyloTree> profile = {a, a, a};
  auto c = MajorityRuleConsensus(profile);
  ASSERT_TRUE(c.ok()) << c.status();
  auto rf = RobinsonFoulds(*c, a);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->distance, 0u);
}

TEST(ConsensusTest, MajorityClusterSurvivesMinorityNoise) {
  // (A,B) cherry in 2 of 3 trees -> kept. Every other cluster appears
  // once only ({A,B,C}, {A,B,D}, {A,C}, {A,C,D}) -> dropped.
  PhyloTree t1 = T("(((A,B),C),D);");
  PhyloTree t2 = T("(((A,B),D),C);");
  PhyloTree t3 = T("(((A,C),D),B);");
  auto c = MajorityRuleConsensus({t1, t2, t3});
  ASSERT_TRUE(c.ok());
  // The consensus contains the AB cluster: LCA(A,B) is not the root
  // and its subtree holds exactly {A, B}.
  NodeId a = c->FindByName("A");
  NodeId b = c->FindByName("B");
  NodeId lca = c->NaiveLca(a, b);
  EXPECT_NE(lca, c->root());
  size_t clade_leaves = 0;
  c->PreOrder(
      [&](NodeId n) {
        if (c->is_leaf(n)) ++clade_leaves;
        return true;
      },
      lca);
  EXPECT_EQ(clade_leaves, 2u);
  // A and C are NOT grouped.
  NodeId cc = c->FindByName("C");
  EXPECT_EQ(c->NaiveLca(a, cc), c->root());
}

TEST(ConsensusTest, ConflictingProfileYieldsStar) {
  PhyloTree t1 = T("((A,B),(C,D));");
  PhyloTree t2 = T("((A,C),(B,D));");
  PhyloTree t3 = T("((A,D),(B,C));");
  auto c = MajorityRuleConsensus({t1, t2, t3});
  ASSERT_TRUE(c.ok());
  // No cluster has majority: consensus is the star on 4 leaves.
  EXPECT_EQ(c->LeafCount(), 4u);
  EXPECT_EQ(c->OutDegree(c->root()), 4);
}

TEST(ConsensusTest, SupportValuesOnEdges) {
  PhyloTree t1 = T("(((A,B),C),D);");
  PhyloTree t2 = T("(((A,B),C),D);");
  PhyloTree t3 = T("(((A,C),B),D);");
  auto c = MajorityRuleConsensus({t1, t2, t3});
  ASSERT_TRUE(c.ok());
  NodeId lca = c->NaiveLca(c->FindByName("A"), c->FindByName("B"));
  // (A,B) appears in 2/3 of the profile.
  EXPECT_NEAR(c->edge_length(lca), 2.0 / 3.0, 1e-9);
}

TEST(ConsensusTest, ErrorsOnBadProfiles) {
  EXPECT_FALSE(MajorityRuleConsensus({}).ok());
  PhyloTree a = T("((A,B),C);");
  PhyloTree b = T("((A,B),D);");
  EXPECT_FALSE(MajorityRuleConsensus({a, b}).ok());
}

TEST(ConsensusTest, ThresholdControlsStrictness) {
  PhyloTree t1 = T("((A,B),(C,D));");
  PhyloTree t2 = T("((A,B),(C,D));");
  PhyloTree t3 = T("((A,C),(B,D));");
  // Strict consensus (threshold ~1.0): nothing survives but the root.
  auto strict = MajorityRuleConsensus({t1, t2, t3}, 0.99);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->OutDegree(strict->root()), 4);
  // Majority keeps AB|CD from two trees.
  auto maj = MajorityRuleConsensus({t1, t2, t3}, 0.5);
  ASSERT_TRUE(maj.ok());
  EXPECT_LT(maj->OutDegree(maj->root()), 4);
}

}  // namespace
}  // namespace crimson
