#include "sim/seq_evolve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/tree_sim.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

SeqEvolveOptions Options(SubstModel model, double kappa = 2.0) {
  SeqEvolveOptions o;
  o.model = model;
  o.kappa = kappa;
  o.seq_length = 500;
  if (model == SubstModel::kHKY85) {
    o.base_freqs = {0.3, 0.2, 0.2, 0.3};
  }
  return o;
}

class TransitionMatrixTest
    : public ::testing::TestWithParam<std::tuple<SubstModel, double>> {};

TEST_P(TransitionMatrixTest, RowsSumToOneAndNonNegative) {
  auto [model, t] = GetParam();
  auto ev = SequenceEvolver::Create(Options(model));
  ASSERT_TRUE(ev.ok());
  TransitionMatrix p = ev->Transition(t);
  for (int i = 0; i < 4; ++i) {
    double row = 0;
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(p[i][j], -1e-12);
      EXPECT_LE(p[i][j], 1.0 + 1e-12);
      row += p[i][j];
    }
    EXPECT_NEAR(row, 1.0, 1e-9) << "model/t " << static_cast<int>(model)
                                << "/" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransitionMatrixTest,
    ::testing::Combine(::testing::Values(SubstModel::kJC69, SubstModel::kK80,
                                         SubstModel::kHKY85),
                       ::testing::Values(0.0, 0.01, 0.1, 1.0, 10.0, 100.0)));

TEST(TransitionMatrixTest2, ZeroTimeIsIdentity) {
  for (SubstModel m :
       {SubstModel::kJC69, SubstModel::kK80, SubstModel::kHKY85}) {
    auto ev = SequenceEvolver::Create(Options(m));
    ASSERT_TRUE(ev.ok());
    TransitionMatrix p = ev->Transition(0.0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(p[i][j], i == j ? 1.0 : 0.0, 1e-12);
      }
    }
  }
}

TEST(TransitionMatrixTest2, LongTimeConvergesToStationary) {
  auto ev = SequenceEvolver::Create(Options(SubstModel::kHKY85));
  ASSERT_TRUE(ev.ok());
  TransitionMatrix p = ev->Transition(500.0);
  const auto& pi = ev->options().base_freqs;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(p[i][j], pi[j], 1e-6);
    }
  }
}

TEST(TransitionMatrixTest2, DetailedBalanceHolds) {
  auto ev = SequenceEvolver::Create(Options(SubstModel::kHKY85, 3.0));
  ASSERT_TRUE(ev.ok());
  const auto& pi = ev->options().base_freqs;
  for (double t : {0.05, 0.3, 1.0}) {
    TransitionMatrix p = ev->Transition(t);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(pi[i] * p[i][j], pi[j] * p[j][i], 1e-9);
      }
    }
  }
}

TEST(TransitionMatrixTest2, JC69IsHkyWithKappaOneUniformFreqs) {
  auto jc = SequenceEvolver::Create(Options(SubstModel::kJC69));
  SeqEvolveOptions hky_opts = Options(SubstModel::kHKY85, 1.0);
  hky_opts.base_freqs = {0.25, 0.25, 0.25, 0.25};
  auto hky = SequenceEvolver::Create(hky_opts);
  ASSERT_TRUE(jc.ok() && hky.ok());
  for (double t : {0.1, 0.5, 2.0}) {
    TransitionMatrix a = jc->Transition(t);
    TransitionMatrix b = hky->Transition(t);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(a[i][j], b[i][j], 1e-12);
      }
    }
  }
}

TEST(TransitionMatrixTest2, JC69ClosedForm) {
  auto ev = SequenceEvolver::Create(Options(SubstModel::kJC69));
  ASSERT_TRUE(ev.ok());
  for (double t : {0.05, 0.2, 1.0}) {
    TransitionMatrix p = ev->Transition(t);
    double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
    double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_NEAR(p[i][j], i == j ? same : diff, 1e-12);
      }
    }
  }
}

TEST(TransitionMatrixTest2, K80TransitionsExceedTransversions) {
  auto ev = SequenceEvolver::Create(Options(SubstModel::kK80, 5.0));
  ASSERT_TRUE(ev.ok());
  TransitionMatrix p = ev->Transition(0.2);
  // A->G (transition) more likely than A->C (transversion) with kappa>1.
  EXPECT_GT(p[0][2], p[0][1]);
  EXPECT_GT(p[1][3], p[1][0]);
}

TEST(SeqEvolverTest, InvalidOptionsRejected) {
  SeqEvolveOptions o;
  o.seq_length = 0;
  EXPECT_FALSE(SequenceEvolver::Create(o).ok());
  o = SeqEvolveOptions{};
  o.mu = -1;
  EXPECT_FALSE(SequenceEvolver::Create(o).ok());
  o = SeqEvolveOptions{};
  o.model = SubstModel::kHKY85;
  o.base_freqs = {0.5, 0.5, 0.5, 0.5};
  EXPECT_FALSE(SequenceEvolver::Create(o).ok());
  o.base_freqs = {0.7, 0.3, -0.2, 0.2};
  EXPECT_FALSE(SequenceEvolver::Create(o).ok());
}

TEST(SeqEvolverTest, RootSequenceFollowsStationary) {
  auto ev = SequenceEvolver::Create(Options(SubstModel::kHKY85));
  ASSERT_TRUE(ev.ok());
  Rng rng(201);
  std::string seq = ev->SampleRootSequence(100000, &rng);
  std::map<char, int> counts;
  for (char c : seq) ++counts[c];
  EXPECT_NEAR(counts['A'] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts['C'] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts['G'] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts['T'] / 100000.0, 0.3, 0.01);
}

TEST(SeqEvolverTest, EvolveAllNodesShapesAndDivergence) {
  Rng rng(202);
  PhyloTree t = MakeBalancedBinary(4, 0.05);
  auto ev = SequenceEvolver::Create(Options(SubstModel::kJC69));
  ASSERT_TRUE(ev.ok());
  auto seqs = ev->EvolveAllNodes(t, &rng);
  ASSERT_TRUE(seqs.ok());
  ASSERT_EQ(seqs->size(), t.size());
  for (const std::string& s : *seqs) EXPECT_EQ(s.size(), 500u);
  // Parent/child sequences differ at roughly the expected rate: for a
  // branch of 0.05 expected substitutions per site, the observed
  // p-distance is near 0.05 * (fraction of visible changes) -- just
  // assert a sane band.
  for (NodeId n = 1; n < t.size(); ++n) {
    int diff = 0;
    for (size_t s = 0; s < 500; ++s) {
      if ((*seqs)[n][s] != (*seqs)[t.parent(n)][s]) ++diff;
    }
    EXPECT_LT(diff / 500.0, 0.15) << "branch diverged too fast";
  }
}

TEST(SeqEvolverTest, DivergenceGrowsWithBranchLength) {
  Rng rng(203);
  auto ev = SequenceEvolver::Create(Options(SubstModel::kJC69));
  ASSERT_TRUE(ev.ok());
  // Two-leaf trees with short and long branches.
  PhyloTree short_t, long_t;
  NodeId r = short_t.AddRoot("");
  short_t.AddChild(r, "A", 0.01);
  short_t.AddChild(r, "B", 0.01);
  r = long_t.AddRoot("");
  long_t.AddChild(r, "A", 1.0);
  long_t.AddChild(r, "B", 1.0);
  auto near = ev->EvolveLeaves(short_t, &rng);
  auto far = ev->EvolveLeaves(long_t, &rng);
  ASSERT_TRUE(near.ok() && far.ok());
  auto pdist = [](const std::string& a, const std::string& b) {
    int d = 0;
    for (size_t i = 0; i < a.size(); ++i) d += a[i] != b[i];
    return d / static_cast<double>(a.size());
  };
  EXPECT_LT(pdist(near->at("A"), near->at("B")), 0.10);
  EXPECT_GT(pdist(far->at("A"), far->at("B")), 0.35);
}

TEST(SeqEvolverTest, EvolveLeavesKeyedByName) {
  Rng rng(204);
  PhyloTree t = MakePaperFigure1Tree();
  auto ev = SequenceEvolver::Create(Options(SubstModel::kK80));
  ASSERT_TRUE(ev.ok());
  auto seqs = ev->EvolveLeaves(t, &rng);
  ASSERT_TRUE(seqs.ok());
  EXPECT_EQ(seqs->size(), 5u);
  for (const char* n : {"Bha", "Lla", "Spy", "Syn", "Bsu"}) {
    EXPECT_TRUE(seqs->count(n)) << n;
  }
}

TEST(SeqEvolverTest, DeterministicBySeed) {
  PhyloTree t = MakePaperFigure1Tree();
  auto ev = SequenceEvolver::Create(Options(SubstModel::kJC69));
  ASSERT_TRUE(ev.ok());
  Rng a(5), b(5);
  auto sa = ev->EvolveLeaves(t, &a);
  auto sb = ev->EvolveLeaves(t, &b);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_EQ(*sa, *sb);
}

}  // namespace
}  // namespace crimson
