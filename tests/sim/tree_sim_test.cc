#include "sim/tree_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace crimson {
namespace {

TEST(YuleTest, LeafCountAndValidity) {
  Rng rng(101);
  for (uint32_t n : {1u, 2u, 10u, 500u}) {
    YuleOptions opts;
    opts.n_leaves = n;
    auto t = SimulateYule(opts, &rng);
    ASSERT_TRUE(t.ok()) << t.status();
    EXPECT_EQ(t->LeafCount(), n);
    EXPECT_TRUE(t->Validate().ok());
  }
}

TEST(YuleTest, TreesAreUltrametric) {
  Rng rng(102);
  YuleOptions opts;
  opts.n_leaves = 200;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  std::vector<double> w = t->RootPathWeights();
  double leaf_depth = -1;
  for (NodeId n = 0; n < t->size(); ++n) {
    if (!t->is_leaf(n)) continue;
    if (leaf_depth < 0) leaf_depth = w[n];
    EXPECT_NEAR(w[n], leaf_depth, 1e-9);
  }
  EXPECT_GT(leaf_depth, 0.0);
}

TEST(YuleTest, BinaryInternalNodes) {
  Rng rng(103);
  YuleOptions opts;
  opts.n_leaves = 100;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  for (NodeId n = 0; n < t->size(); ++n) {
    if (!t->is_leaf(n)) EXPECT_EQ(t->OutDegree(n), 2);
  }
}

TEST(YuleTest, DeterministicBySeed) {
  YuleOptions opts;
  opts.n_leaves = 50;
  Rng a(7), b(7);
  auto ta = SimulateYule(opts, &a);
  auto tb = SimulateYule(opts, &b);
  ASSERT_TRUE(ta.ok() && tb.ok());
  EXPECT_TRUE(PhyloTree::Equal(*ta, *tb, 0, /*ordered=*/true));
}

TEST(YuleTest, UniqueLeafNames) {
  Rng rng(104);
  YuleOptions opts;
  opts.n_leaves = 300;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  std::set<std::string> names;
  for (NodeId n : t->Leaves()) names.insert(std::string(t->name(n)));
  EXPECT_EQ(names.size(), 300u);
}

TEST(YuleTest, InvalidOptionsRejected) {
  Rng rng(105);
  YuleOptions opts;
  opts.n_leaves = 0;
  EXPECT_FALSE(SimulateYule(opts, &rng).ok());
  opts.n_leaves = 5;
  opts.birth_rate = 0;
  EXPECT_FALSE(SimulateYule(opts, &rng).ok());
}

TEST(BirthDeathTest, PrunedTreeHasOnlyExtantLeaves) {
  Rng rng(106);
  BirthDeathOptions opts;
  opts.n_leaves = 100;
  opts.death_rate = 0.4;
  auto t = SimulateBirthDeath(opts, &rng);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_TRUE(t->Validate().ok());
  EXPECT_EQ(t->LeafCount(), 100u);
  for (NodeId n : t->Leaves()) {
    EXPECT_EQ(t->name(n).rfind("S", 0), 0u) << t->name(n);
  }
  // No unary nodes survive pruning.
  for (NodeId n = 0; n < t->size(); ++n) {
    if (!t->is_leaf(n)) EXPECT_GE(t->OutDegree(n), 2);
  }
}

TEST(BirthDeathTest, UnprunedKeepsExtinctTips) {
  Rng rng(107);
  BirthDeathOptions opts;
  opts.n_leaves = 60;
  opts.death_rate = 0.5;
  opts.birth_rate = 1.0;
  opts.prune_extinct = false;
  auto t = SimulateBirthDeath(opts, &rng);
  ASSERT_TRUE(t.ok());
  size_t extinct = 0;
  for (NodeId n : t->Leaves()) {
    if (t->name(n).rfind("X", 0) == 0) ++extinct;
  }
  EXPECT_GT(extinct, 0u);
  EXPECT_GE(t->LeafCount(), 60u + extinct);
}

TEST(BirthDeathTest, SubcriticalRejected) {
  Rng rng(108);
  BirthDeathOptions opts;
  opts.birth_rate = 0.5;
  opts.death_rate = 0.5;
  EXPECT_TRUE(SimulateBirthDeath(opts, &rng).status().IsInvalidArgument());
}

TEST(BirthDeathTest, PrunedLeafDepthsVary) {
  // With extinction, pruned trees show varying leaf path weights once
  // branch rates are perturbed (the non-clock regime for E11).
  Rng rng(109);
  BirthDeathOptions opts;
  opts.n_leaves = 150;
  opts.death_rate = 0.4;
  auto t = SimulateBirthDeath(opts, &rng);
  ASSERT_TRUE(t.ok());
  PerturbBranchRates(&*t, 4.0, &rng);
  std::vector<double> w = t->RootPathWeights();
  double lo = 1e300, hi = 0;
  for (NodeId n : t->Leaves()) {
    lo = std::min(lo, w[n]);
    hi = std::max(hi, w[n]);
  }
  EXPECT_GT(hi / lo, 1.2) << "expected clock violation after perturbation";
}

TEST(PerturbBranchRatesTest, PreservesTopologyAndPositivity) {
  Rng rng(110);
  YuleOptions opts;
  opts.n_leaves = 100;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  PhyloTree before = *t;
  PerturbBranchRates(&*t, 2.0, &rng);
  EXPECT_EQ(t->size(), before.size());
  for (NodeId n = 1; n < t->size(); ++n) {
    EXPECT_GE(t->edge_length(n), 0.0);
    double ratio = t->edge_length(n) / before.edge_length(n);
    EXPECT_GE(ratio, 0.5 - 1e-9);
    EXPECT_LE(ratio, 2.0 + 1e-9);
  }
}

TEST(SimScaleTest, LargeYuleTreeIsFast) {
  Rng rng(111);
  YuleOptions opts;
  opts.n_leaves = 100000;
  auto t = SimulateYule(opts, &rng);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->LeafCount(), 100000u);
  EXPECT_EQ(t->size(), 2 * 100000u - 1);
  // Yule depth concentrates around O(log n) but is comfortably deeper
  // than balanced; sanity bound only.
  EXPECT_GT(t->MaxDepth(), 17u);
}

}  // namespace
}  // namespace crimson
