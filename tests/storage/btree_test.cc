#include "storage/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "common/string_util.h"
#include "storage/key_codec.h"

namespace crimson {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p = Pager::Open(NewMemFile());
    ASSERT_TRUE(p.ok());
    pager_ = std::move(p).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 256);
    auto t = BTree::Create(pool_.get());
    ASSERT_TRUE(t.ok());
    tree_ = std::make_unique<BTree>(std::move(t).value());
  }

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  std::string v;
  EXPECT_TRUE(tree_->Get(Slice("k"), &v).IsNotFound());
  EXPECT_EQ(*tree_->Count(), 0u);
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, SingleInsertGet) {
  ASSERT_TRUE(tree_->Insert(Slice("species"), Slice("42")).ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(Slice("species"), &v).ok());
  EXPECT_EQ(v, "42");
  EXPECT_TRUE(tree_->Get(Slice("specie"), &v).IsNotFound());
  EXPECT_TRUE(tree_->Get(Slice("speciesz"), &v).IsNotFound());
}

TEST_F(BTreeTest, SequentialInsertsSplitCorrectly) {
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    std::string key = StrFormat("key%08d", i);
    ASSERT_TRUE(tree_->Insert(Slice(key), Slice(std::to_string(i))).ok())
        << i;
  }
  EXPECT_EQ(*tree_->Count(), static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 97) {
    std::string v;
    ASSERT_TRUE(tree_->Get(Slice(StrFormat("key%08d", i)), &v).ok());
    EXPECT_EQ(v, std::to_string(i));
  }
}

TEST_F(BTreeTest, ReverseOrderInserts) {
  const int n = 5000;
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%06d", i)), Slice("v")).ok());
  }
  EXPECT_EQ(*tree_->Count(), static_cast<uint64_t>(n));
  // Iteration yields ascending order.
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::string prev;
  int count = 0;
  while (it.Valid()) {
    std::string k = it.key().ToString();
    if (count > 0) EXPECT_LT(prev, k);
    prev = k;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, n);
}

// Property: a random workload agrees with std::map exactly.
class BTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeRandomTest, MatchesStdMap) {
  auto p = Pager::Open(NewMemFile());
  ASSERT_TRUE(p.ok());
  auto pager = std::move(p).value();
  BufferPool pool(pager.get(), 256);
  auto t = BTree::Create(&pool);
  ASSERT_TRUE(t.ok());
  BTree tree = std::move(t).value();

  int n = GetParam();
  Rng rng(777 + static_cast<uint64_t>(n));
  std::map<std::string, std::string> reference;
  for (int i = 0; i < n; ++i) {
    std::string key = StrFormat("k%llu", static_cast<unsigned long long>(
                                              rng.Uniform(1u << 20)));
    std::string value = StrFormat("v%d", i);
    if (reference.emplace(key, value).second) {
      ASSERT_TRUE(tree.Insert(Slice(key), Slice(value), /*unique=*/true).ok());
    } else {
      EXPECT_TRUE(tree.Insert(Slice(key), Slice(value), /*unique=*/true)
                      .IsAlreadyExists());
    }
  }
  // Full-order agreement via iterator.
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto ref_it = reference.begin();
  while (it.Valid()) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it.key().ToString(), ref_it->first);
    EXPECT_EQ(it.value().ToString(), ref_it->second);
    ++ref_it;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(ref_it, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeRandomTest,
                         ::testing::Values(10, 100, 1000, 20000));

TEST_F(BTreeTest, SeekFindsLowerBound) {
  for (int i = 0; i < 100; i += 2) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%03d", i)), Slice("v")).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("k005")).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k006");
  ASSERT_TRUE(it.Seek(Slice("k098")).ok());
  EXPECT_EQ(it.key().ToString(), "k098");
  ASSERT_TRUE(it.Seek(Slice("k099")).ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, DuplicateKeysAllRetained) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(Slice("dup"), Slice(std::to_string(i))).ok());
  }
  ASSERT_TRUE(tree_->Insert(Slice("aaa"), Slice("x")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("zzz"), Slice("y")).ok());
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("dup")).ok());
  int count = 0;
  std::set<std::string> values;
  while (it.Valid() && it.key() == Slice("dup")) {
    values.insert(it.value().ToString());
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 500);
  EXPECT_EQ(values.size(), 500u);
}

TEST_F(BTreeTest, DuplicateRunStraddlingSplitsIsFullyVisible) {
  // Regression: a duplicate run long enough to straddle leaf splits
  // (and push equal keys into the subtree LEFT of an equal separator)
  // must still be fully reachable. Read descent has to lower-bound on
  // separators; upper-bound descent used to land mid-run, so Seek
  // returned a suffix and Get/Delete missed leading entries.
  const int kDupes = 2000;
  for (int i = 0; i < kDupes; ++i) {
    ASSERT_TRUE(tree_->Insert(Slice("dupkey"), Slice(U64Key(i))).ok());
  }
  ASSERT_TRUE(tree_->Insert(Slice("aaa"), Slice("x")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("zzz"), Slice("y")).ok());

  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("dupkey")).ok());
  int count = 0;
  while (it.Valid() && it.key() == Slice("dupkey")) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, kDupes);

  // Get finds the run even when its head is left of a separator.
  std::string v;
  EXPECT_TRUE(tree_->Get(Slice("dupkey"), &v).ok());
  // Delete by (key, value) reaches the first-inserted (leftmost) entry.
  std::string first = U64Key(0);
  Slice first_slice(first);
  EXPECT_TRUE(tree_->Delete(Slice("dupkey"), &first_slice).ok());
  ASSERT_TRUE(it.Seek(Slice("dupkey")).ok());
  count = 0;
  while (it.Valid() && it.key() == Slice("dupkey")) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, kDupes - 1);
}

TEST_F(BTreeTest, DeleteSpecificValueAmongDuplicates) {
  ASSERT_TRUE(tree_->Insert(Slice("d"), Slice("1")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("d"), Slice("2")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("d"), Slice("3")).ok());
  Slice two("2");
  ASSERT_TRUE(tree_->Delete(Slice("d"), &two).ok());
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("d")).ok());
  std::set<std::string> values;
  while (it.Valid() && it.key() == Slice("d")) {
    values.insert(it.value().ToString());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(values, (std::set<std::string>{"1", "3"}));
  // Deleting an absent value reports NotFound.
  Slice nine("9");
  EXPECT_TRUE(tree_->Delete(Slice("d"), &nine).IsNotFound());
}

TEST_F(BTreeTest, DeleteThenReinsert) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("v")).ok());
  }
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree_->Delete(Slice(StrFormat("k%05d", i))).ok());
  }
  EXPECT_EQ(*tree_->Count(), 1000u);
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("w")).ok());
  }
  EXPECT_EQ(*tree_->Count(), 2000u);
  std::string v;
  ASSERT_TRUE(tree_->Get(Slice("k00002"), &v).ok());
  EXPECT_EQ(v, "w");
}

TEST_F(BTreeTest, OversizedKeyValueRejected) {
  std::string big_key(BTree::kMaxKeySize + 1, 'k');
  std::string big_val(BTree::kMaxValueSize + 1, 'v');
  EXPECT_TRUE(
      tree_->Insert(Slice(big_key), Slice("v")).IsInvalidArgument());
  EXPECT_TRUE(
      tree_->Insert(Slice("k"), Slice(big_val)).IsInvalidArgument());
  // Max sizes are accepted.
  std::string max_key(BTree::kMaxKeySize, 'k');
  std::string max_val(BTree::kMaxValueSize, 'v');
  EXPECT_TRUE(tree_->Insert(Slice(max_key), Slice(max_val)).ok());
}

TEST_F(BTreeTest, LargeKeysForceDeepSplits) {
  // Big cells -> few per page -> a tall tree quickly.
  for (int i = 0; i < 300; ++i) {
    std::string key = StrFormat("%04d-", i) + std::string(500, 'p');
    ASSERT_TRUE(tree_->Insert(Slice(key), Slice(std::string(500, 'q'))).ok());
  }
  EXPECT_EQ(*tree_->Count(), 300u);
  std::string v;
  std::string probe = "0123-" + std::string(500, 'p');
  ASSERT_TRUE(tree_->Get(Slice(probe), &v).ok());
  EXPECT_EQ(v.size(), 500u);
}

TEST_F(BTreeTest, PersistsThroughAnchorAfterReopen) {
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("v")).ok());
  }
  PageId anchor = tree_->anchor();
  auto reopened = BTree::Open(pool_.get(), anchor);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*reopened->Count(), 3000u);
  std::string v;
  EXPECT_TRUE(reopened->Get(Slice("k02999"), &v).ok());
}

TEST_F(BTreeTest, OrderPreservingDoubleKeys) {
  // The time index depends on DoubleKey respecting numeric order.
  std::vector<double> values = {-100.5, -1.0, -0.25, 0.0, 0.125, 3.0, 1e9};
  Rng rng(5);
  std::vector<double> shuffled = values;
  rng.Shuffle(&shuffled);
  for (double x : shuffled) {
    ASSERT_TRUE(tree_->Insert(Slice(DoubleKey(x)), Slice("v")).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (double expected : values) {
    ASSERT_TRUE(it.Valid());
    EXPECT_DOUBLE_EQ(DecodeDoubleKey(it.key().data()), expected);
    ASSERT_TRUE(it.Next().ok());
  }
}

}  // namespace
}  // namespace crimson
