#include "storage/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "common/random.h"
#include "common/string_util.h"
#include "storage/key_codec.h"

namespace crimson {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p = Pager::Open(NewMemFile());
    ASSERT_TRUE(p.ok());
    pager_ = std::move(p).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 256);
    auto t = BTree::Create(pool_.get());
    ASSERT_TRUE(t.ok());
    tree_ = std::make_unique<BTree>(std::move(t).value());
  }

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  std::string v;
  EXPECT_TRUE(tree_->Get(Slice("k"), &v).IsNotFound());
  EXPECT_EQ(*tree_->Count(), 0u);
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, SingleInsertGet) {
  ASSERT_TRUE(tree_->Insert(Slice("species"), Slice("42")).ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(Slice("species"), &v).ok());
  EXPECT_EQ(v, "42");
  EXPECT_TRUE(tree_->Get(Slice("specie"), &v).IsNotFound());
  EXPECT_TRUE(tree_->Get(Slice("speciesz"), &v).IsNotFound());
}

TEST_F(BTreeTest, SequentialInsertsSplitCorrectly) {
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    std::string key = StrFormat("key%08d", i);
    ASSERT_TRUE(tree_->Insert(Slice(key), Slice(std::to_string(i))).ok())
        << i;
  }
  EXPECT_EQ(*tree_->Count(), static_cast<uint64_t>(n));
  for (int i = 0; i < n; i += 97) {
    std::string v;
    ASSERT_TRUE(tree_->Get(Slice(StrFormat("key%08d", i)), &v).ok());
    EXPECT_EQ(v, std::to_string(i));
  }
}

TEST_F(BTreeTest, ReverseOrderInserts) {
  const int n = 5000;
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%06d", i)), Slice("v")).ok());
  }
  EXPECT_EQ(*tree_->Count(), static_cast<uint64_t>(n));
  // Iteration yields ascending order.
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::string prev;
  int count = 0;
  while (it.Valid()) {
    std::string k = it.key().ToString();
    if (count > 0) EXPECT_LT(prev, k);
    prev = k;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, n);
}

// Property: a random workload agrees with std::map exactly.
class BTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeRandomTest, MatchesStdMap) {
  auto p = Pager::Open(NewMemFile());
  ASSERT_TRUE(p.ok());
  auto pager = std::move(p).value();
  BufferPool pool(pager.get(), 256);
  auto t = BTree::Create(&pool);
  ASSERT_TRUE(t.ok());
  BTree tree = std::move(t).value();

  int n = GetParam();
  Rng rng(777 + static_cast<uint64_t>(n));
  std::map<std::string, std::string> reference;
  for (int i = 0; i < n; ++i) {
    std::string key = StrFormat("k%llu", static_cast<unsigned long long>(
                                              rng.Uniform(1u << 20)));
    std::string value = StrFormat("v%d", i);
    if (reference.emplace(key, value).second) {
      ASSERT_TRUE(tree.Insert(Slice(key), Slice(value), /*unique=*/true).ok());
    } else {
      EXPECT_TRUE(tree.Insert(Slice(key), Slice(value), /*unique=*/true)
                      .IsAlreadyExists());
    }
  }
  // Full-order agreement via iterator.
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto ref_it = reference.begin();
  while (it.Valid()) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it.key().ToString(), ref_it->first);
    EXPECT_EQ(it.value().ToString(), ref_it->second);
    ++ref_it;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(ref_it, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeRandomTest,
                         ::testing::Values(10, 100, 1000, 20000));

TEST_F(BTreeTest, SeekFindsLowerBound) {
  for (int i = 0; i < 100; i += 2) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%03d", i)), Slice("v")).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("k005")).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "k006");
  ASSERT_TRUE(it.Seek(Slice("k098")).ok());
  EXPECT_EQ(it.key().ToString(), "k098");
  ASSERT_TRUE(it.Seek(Slice("k099")).ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, DuplicateKeysAllRetained) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(Slice("dup"), Slice(std::to_string(i))).ok());
  }
  ASSERT_TRUE(tree_->Insert(Slice("aaa"), Slice("x")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("zzz"), Slice("y")).ok());
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("dup")).ok());
  int count = 0;
  std::set<std::string> values;
  while (it.Valid() && it.key() == Slice("dup")) {
    values.insert(it.value().ToString());
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 500);
  EXPECT_EQ(values.size(), 500u);
}

TEST_F(BTreeTest, DuplicateRunStraddlingSplitsIsFullyVisible) {
  // Regression: a duplicate run long enough to straddle leaf splits
  // (and push equal keys into the subtree LEFT of an equal separator)
  // must still be fully reachable. Read descent has to lower-bound on
  // separators; upper-bound descent used to land mid-run, so Seek
  // returned a suffix and Get/Delete missed leading entries.
  const int kDupes = 2000;
  for (int i = 0; i < kDupes; ++i) {
    ASSERT_TRUE(tree_->Insert(Slice("dupkey"), Slice(U64Key(i))).ok());
  }
  ASSERT_TRUE(tree_->Insert(Slice("aaa"), Slice("x")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("zzz"), Slice("y")).ok());

  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("dupkey")).ok());
  int count = 0;
  while (it.Valid() && it.key() == Slice("dupkey")) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, kDupes);

  // Get finds the run even when its head is left of a separator.
  std::string v;
  EXPECT_TRUE(tree_->Get(Slice("dupkey"), &v).ok());
  // Delete by (key, value) reaches the first-inserted (leftmost) entry.
  std::string first = U64Key(0);
  Slice first_slice(first);
  EXPECT_TRUE(tree_->Delete(Slice("dupkey"), &first_slice).ok());
  ASSERT_TRUE(it.Seek(Slice("dupkey")).ok());
  count = 0;
  while (it.Valid() && it.key() == Slice("dupkey")) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, kDupes - 1);
}

TEST_F(BTreeTest, DeleteSpecificValueAmongDuplicates) {
  ASSERT_TRUE(tree_->Insert(Slice("d"), Slice("1")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("d"), Slice("2")).ok());
  ASSERT_TRUE(tree_->Insert(Slice("d"), Slice("3")).ok());
  Slice two("2");
  ASSERT_TRUE(tree_->Delete(Slice("d"), &two).ok());
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Slice("d")).ok());
  std::set<std::string> values;
  while (it.Valid() && it.key() == Slice("d")) {
    values.insert(it.value().ToString());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(values, (std::set<std::string>{"1", "3"}));
  // Deleting an absent value reports NotFound.
  Slice nine("9");
  EXPECT_TRUE(tree_->Delete(Slice("d"), &nine).IsNotFound());
}

TEST_F(BTreeTest, DeleteThenReinsert) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("v")).ok());
  }
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(tree_->Delete(Slice(StrFormat("k%05d", i))).ok());
  }
  EXPECT_EQ(*tree_->Count(), 1000u);
  for (int i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("w")).ok());
  }
  EXPECT_EQ(*tree_->Count(), 2000u);
  std::string v;
  ASSERT_TRUE(tree_->Get(Slice("k00002"), &v).ok());
  EXPECT_EQ(v, "w");
}

TEST_F(BTreeTest, OversizedKeyValueRejected) {
  std::string big_key(BTree::kMaxKeySize + 1, 'k');
  std::string big_val(BTree::kMaxValueSize + 1, 'v');
  EXPECT_TRUE(
      tree_->Insert(Slice(big_key), Slice("v")).IsInvalidArgument());
  EXPECT_TRUE(
      tree_->Insert(Slice("k"), Slice(big_val)).IsInvalidArgument());
  // Max sizes are accepted.
  std::string max_key(BTree::kMaxKeySize, 'k');
  std::string max_val(BTree::kMaxValueSize, 'v');
  EXPECT_TRUE(tree_->Insert(Slice(max_key), Slice(max_val)).ok());
}

TEST_F(BTreeTest, LargeKeysForceDeepSplits) {
  // Big cells -> few per page -> a tall tree quickly.
  for (int i = 0; i < 300; ++i) {
    std::string key = StrFormat("%04d-", i) + std::string(500, 'p');
    ASSERT_TRUE(tree_->Insert(Slice(key), Slice(std::string(500, 'q'))).ok());
  }
  EXPECT_EQ(*tree_->Count(), 300u);
  std::string v;
  std::string probe = "0123-" + std::string(500, 'p');
  ASSERT_TRUE(tree_->Get(Slice(probe), &v).ok());
  EXPECT_EQ(v.size(), 500u);
}

TEST_F(BTreeTest, PersistsThroughAnchorAfterReopen) {
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("v")).ok());
  }
  PageId anchor = tree_->anchor();
  auto reopened = BTree::Open(pool_.get(), anchor);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*reopened->Count(), 3000u);
  std::string v;
  EXPECT_TRUE(reopened->Get(Slice("k02999"), &v).ok());
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, std::string>> RandomEntries(
    int n, uint64_t seed, uint32_t key_space) {
  // A small key space forces duplicate keys (with distinct values).
  Rng rng(seed);
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) {
    entries.emplace_back(
        StrFormat("k%06u", static_cast<unsigned>(rng.Uniform(key_space))),
        StrFormat("v%d", i));
  }
  return entries;
}

/// Sorts entries for BulkLoad so the result matches an insert-built
/// tree: key ascending, ties in *reverse* arrival order (Insert
/// prepends to a duplicate run).
std::vector<std::pair<std::string, std::string>> SortForBulkLoad(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<size_t> order(entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (entries[a].first != entries[b].first) {
      return entries[a].first < entries[b].first;
    }
    return a > b;
  });
  std::vector<std::pair<std::string, std::string>> sorted;
  sorted.reserve(entries.size());
  for (size_t i : order) sorted.push_back(entries[i]);
  return sorted;
}

std::vector<std::pair<std::string, std::string>> Dump(const BTree& tree) {
  std::vector<std::pair<std::string, std::string>> out;
  auto it = tree.NewIterator();
  EXPECT_TRUE(it.SeekToFirst().ok());
  while (it.Valid()) {
    out.emplace_back(it.key().ToString(), it.value().ToString());
    EXPECT_TRUE(it.Next().ok());
  }
  return out;
}

/// Bulk-loaded and insert-loaded trees over the same entries must be
/// observationally identical: full scans, Seek positions, Get results,
/// and iteration after deletes.
void CheckBulkMatchesIncremental(int n, uint64_t seed, uint32_t key_space) {
  auto p = Pager::Open(NewMemFile());
  ASSERT_TRUE(p.ok());
  auto pager = std::move(p).value();
  BufferPool pool(pager.get(), 512);

  std::vector<std::pair<std::string, std::string>> entries =
      RandomEntries(n, seed, key_space);

  BTree incremental = std::move(BTree::Create(&pool)).value();
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(incremental.Insert(Slice(key), Slice(value)).ok());
  }
  BTree bulk = std::move(BTree::Create(&pool)).value();
  ASSERT_TRUE(bulk.BulkLoad(SortForBulkLoad(entries)).ok());

  EXPECT_EQ(Dump(incremental), Dump(bulk));

  // Seek and Get agree on present and absent probes.
  Rng rng(seed ^ 0xABCD);
  auto it_a = incremental.NewIterator();
  auto it_b = bulk.NewIterator();
  for (int i = 0; i < 200; ++i) {
    std::string probe = StrFormat(
        "k%06u", static_cast<unsigned>(rng.Uniform(key_space + 50)));
    ASSERT_TRUE(it_a.Seek(Slice(probe)).ok());
    ASSERT_TRUE(it_b.Seek(Slice(probe)).ok());
    ASSERT_EQ(it_a.Valid(), it_b.Valid()) << probe;
    if (it_a.Valid()) {
      EXPECT_EQ(it_a.key().ToString(), it_b.key().ToString()) << probe;
      EXPECT_EQ(it_a.value().ToString(), it_b.value().ToString()) << probe;
    }
    std::string va, vb;
    Status sa = incremental.Get(Slice(probe), &va);
    Status sb = bulk.Get(Slice(probe), &vb);
    ASSERT_EQ(sa.ok(), sb.ok()) << probe;
    if (sa.ok()) EXPECT_EQ(va, vb);
  }

  // Delete a random subset (by key+value) from both; iteration must
  // still agree.
  for (size_t i = 0; i < entries.size(); i += 3) {
    Slice value(entries[i].second);
    Status sa = incremental.Delete(Slice(entries[i].first), &value);
    Status sb = bulk.Delete(Slice(entries[i].first), &value);
    ASSERT_EQ(sa.ok(), sb.ok()) << entries[i].first;
  }
  EXPECT_EQ(Dump(incremental), Dump(bulk));
}

class BTreeBulkEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(BTreeBulkEquivalenceTest, MatchesIncrementalLoad) {
  auto [n, key_space] = GetParam();
  CheckBulkMatchesIncremental(n, 0xB17D + n, key_space);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BTreeBulkEquivalenceTest,
    ::testing::Values(std::make_tuple(10, 1u << 20),
                      std::make_tuple(1000, 1u << 20),
                      std::make_tuple(1000, 64),      // heavy duplicates
                      std::make_tuple(20000, 1u << 20),
                      std::make_tuple(20000, 512)));

TEST(BTreeBulkStressTest, LargeRandomWorkloadsMatchIncremental) {
  // Dialed-up randomized sweep: ctest -C stress -L stress.
  Rng rng(0x57E55);
  for (int rep = 0; rep < 4; ++rep) {
    int n = 30000 + static_cast<int>(rng.Uniform(30000));
    uint32_t key_space = rep % 2 == 0 ? 1u << 24 : 256;
    CheckBulkMatchesIncremental(n, rng.Next(), key_space);
  }
}

TEST_F(BTreeTest, BulkLoadEdgeCases) {
  // Empty input is a no-op.
  ASSERT_TRUE(
      tree_->BulkLoad(std::vector<std::pair<std::string, std::string>>{})
          .ok());
  EXPECT_EQ(*tree_->Count(), 0u);
  // Unsorted input rejected.
  std::vector<std::pair<std::string, std::string>> unsorted = {
      {"b", "1"}, {"a", "2"}};
  EXPECT_TRUE(tree_->BulkLoad(unsorted).IsInvalidArgument());
  // Oversized key rejected.
  std::vector<std::pair<std::string, std::string>> oversized = {
      {std::string(BTree::kMaxKeySize + 1, 'k'), "v"}};
  EXPECT_TRUE(tree_->BulkLoad(oversized).IsInvalidArgument());
  // Single entry works.
  std::vector<std::pair<std::string, std::string>> one = {{"a", "1"}};
  ASSERT_TRUE(tree_->BulkLoad(one).ok());
  std::string v;
  ASSERT_TRUE(tree_->Get(Slice("a"), &v).ok());
  EXPECT_EQ(v, "1");
  // A non-empty tree refuses a second bulk load.
  EXPECT_TRUE(tree_->BulkLoad(one).IsFailedPrecondition());
}

TEST_F(BTreeTest, BulkLoadedTreeAcceptsFurtherInserts) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 5000; i += 2) {
    entries.emplace_back(StrFormat("k%05d", i), "bulk");
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  for (int i = 1; i < 5000; i += 2) {
    ASSERT_TRUE(
        tree_->Insert(Slice(StrFormat("k%05d", i)), Slice("ins")).ok());
  }
  EXPECT_EQ(*tree_->Count(), 5000u);
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(it.Valid()) << i;
    EXPECT_EQ(it.key().ToString(), StrFormat("k%05d", i));
    EXPECT_EQ(it.value().ToString(), i % 2 == 0 ? "bulk" : "ins");
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, LaterInsertsIntoBulkLoadedDuplicateRunsMatchInsertBuilt) {
  // Bulk loading keeps a leaf-sized duplicate run within one leaf (like
  // the insert path's ChooseSplitPoint), so a *later* Insert of that
  // key prepends to the run head exactly as in an insert-built tree.
  auto p = Pager::Open(NewMemFile());
  ASSERT_TRUE(p.ok());
  auto pager = std::move(p).value();
  BufferPool pool(pager.get(), 256);

  // 30 keys x 40 duplicates, shuffled arrival order.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int k = 0; k < 30; ++k) {
    for (int d = 0; d < 40; ++d) {
      entries.emplace_back(StrFormat("key%02d", k), StrFormat("v%d.%d", k, d));
    }
  }
  Rng rng(0xD0D0);
  rng.Shuffle(&entries);

  BTree incremental = std::move(BTree::Create(&pool)).value();
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(incremental.Insert(Slice(key), Slice(value)).ok());
  }
  BTree bulk = std::move(BTree::Create(&pool)).value();
  ASSERT_TRUE(bulk.BulkLoad(SortForBulkLoad(entries)).ok());
  ASSERT_EQ(Dump(incremental), Dump(bulk));

  // Follow-up duplicate inserts land identically in both trees.
  for (int k = 0; k < 30; k += 2) {
    for (int extra = 0; extra < 3; ++extra) {
      std::string key = StrFormat("key%02d", k);
      std::string value = StrFormat("late%d.%d", k, extra);
      ASSERT_TRUE(incremental.Insert(Slice(key), Slice(value)).ok());
      ASSERT_TRUE(bulk.Insert(Slice(key), Slice(value)).ok());
    }
  }
  EXPECT_EQ(Dump(incremental), Dump(bulk));
}

TEST_F(BTreeTest, BulkLoadLargeCellsBuildTallTree) {
  // Big cells -> few per page -> several stitched internal levels.
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 400; ++i) {
    entries.emplace_back(StrFormat("%04d-", i) + std::string(500, 'p'),
                         std::string(500, 'q'));
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  EXPECT_EQ(*tree_->Count(), 400u);
  for (int i = 0; i < 400; i += 37) {
    std::string v;
    std::string probe = StrFormat("%04d-", i) + std::string(500, 'p');
    ASSERT_TRUE(tree_->Get(Slice(probe), &v).ok()) << i;
    EXPECT_EQ(v.size(), 500u);
  }
}

TEST_F(BTreeTest, OrderPreservingDoubleKeys) {
  // The time index depends on DoubleKey respecting numeric order.
  std::vector<double> values = {-100.5, -1.0, -0.25, 0.0, 0.125, 3.0, 1e9};
  Rng rng(5);
  std::vector<double> shuffled = values;
  rng.Shuffle(&shuffled);
  for (double x : shuffled) {
    ASSERT_TRUE(tree_->Insert(Slice(DoubleKey(x)), Slice("v")).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (double expected : values) {
    ASSERT_TRUE(it.Valid());
    EXPECT_DOUBLE_EQ(DecodeDoubleKey(it.key().data()), expected);
    ASSERT_TRUE(it.Next().ok());
  }
}

}  // namespace
}  // namespace crimson
