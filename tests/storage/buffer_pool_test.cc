#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace crimson {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = Pager::Open(NewMemFile());
    ASSERT_TRUE(r.ok());
    pager_ = std::move(r).value();
  }

  std::unique_ptr<Pager> pager_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPinned) {
  BufferPool pool(pager_.get(), 8);
  PageId id;
  auto g = pool.New(&id);
  ASSERT_TRUE(g.ok());
  EXPECT_NE(id, kInvalidPageId);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(g->data()[i], 0);
  }
}

TEST_F(BufferPoolTest, FetchHitAfterNew) {
  BufferPool pool(pager_.get(), 8);
  PageId id;
  {
    auto g = pool.New(&id);
    ASSERT_TRUE(g.ok());
    memcpy(g->data(), "cached", 6);
    g->MarkDirty();
  }
  auto g2 = pool.Fetch(id);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(memcmp(g2->data(), "cached", 6), 0);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(pager_.get(), 8);
  std::vector<PageId> ids;
  // Create more pages than frames; earlier ones must be evicted and
  // written back.
  for (int i = 0; i < 20; ++i) {
    PageId id;
    auto g = pool.New(&id);
    ASSERT_TRUE(g.ok());
    snprintf(g->data(), 16, "page-%d", i);
    g->MarkDirty();
    ids.push_back(id);
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
  // Every page still reads back correctly (possibly from disk).
  for (int i = 0; i < 20; ++i) {
    auto g = pool.Fetch(ids[i]);
    ASSERT_TRUE(g.ok());
    char expect[16];
    snprintf(expect, 16, "page-%d", i);
    EXPECT_STREQ(g->data(), expect);
  }
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(pager_.get(), 8);
  std::vector<PageId> ids(8);
  for (int i = 0; i < 8; ++i) {
    auto g = pool.New(&ids[i]);
    ASSERT_TRUE(g.ok());
  }
  // Touch page 0 so page 1 becomes the LRU victim.
  { auto g = pool.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  PageId id9;
  { auto g = pool.New(&id9); ASSERT_TRUE(g.ok()); }
  pool.ResetStats();
  { auto g = pool.Fetch(ids[0]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);  // still resident
  { auto g = pool.Fetch(ids[1]); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);  // was evicted
}

TEST_F(BufferPoolTest, AllFramesPinnedExhaustsPool) {
  BufferPool pool(pager_.get(), 8);
  std::vector<PageGuard> guards;
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto g = pool.New(&id);
    ASSERT_TRUE(g.ok());
    guards.push_back(std::move(*g));
  }
  PageId id;
  auto g = pool.New(&id);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
  // Releasing one pin frees a frame.
  guards.pop_back();
  auto g2 = pool.New(&id);
  EXPECT_TRUE(g2.ok());
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  BufferPool pool(pager_.get(), 8);
  PageId keep;
  auto kept = pool.New(&keep);
  ASSERT_TRUE(kept.ok());
  memcpy(kept->data(), "pinned", 6);
  kept->MarkDirty();
  for (int i = 0; i < 30; ++i) {
    PageId id;
    auto g = pool.New(&id);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(memcmp(kept->data(), "pinned", 6), 0);
}

TEST_F(BufferPoolTest, MoveTransfersPin) {
  BufferPool pool(pager_.get(), 8);
  PageId id;
  auto g = pool.New(&id);
  ASSERT_TRUE(g.ok());
  PageGuard moved = std::move(*g);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(g->valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
}

TEST_F(BufferPoolTest, FlushAllPersistsEverything) {
  BufferPool pool(pager_.get(), 8);
  PageId id;
  {
    auto g = pool.New(&id);
    ASSERT_TRUE(g.ok());
    memcpy(g->data(), "durable", 7);
    g->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> raw(kPageSize);
  ASSERT_TRUE(pager_->ReadPage(id, raw.data()).ok());
  EXPECT_EQ(memcmp(raw.data(), "durable", 7), 0);
}

TEST_F(BufferPoolTest, FreeRemovesFromCacheAndPager) {
  BufferPool pool(pager_.get(), 8);
  PageId id;
  { auto g = pool.New(&id); ASSERT_TRUE(g.ok()); }
  ASSERT_TRUE(pool.Free(id).ok());
  // The pager hands the id back on the next allocation.
  PageId id2;
  { auto g = pool.New(&id2); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(id2, id);
}

TEST_F(BufferPoolTest, FreePinnedPageRejected) {
  BufferPool pool(pager_.get(), 8);
  PageId id;
  auto g = pool.New(&id);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(pool.Free(id).IsFailedPrecondition());
}

}  // namespace
}  // namespace crimson
