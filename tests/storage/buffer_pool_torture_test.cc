// Buffer-pool torture tests: a pool capped at a handful of frames,
// many threads pinning/unpinning/mutating pages under the per-frame
// latches. Asserts pin-count invariants (pinned frames are never
// evicted or repurposed), no lost dirty bits or updates, and clean
// interaction with an active WAL transaction. `*Stress*` variants
// (ctest -C stress -L stress) dial threads and iterations up.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "storage/database.h"
#include "storage/file.h"
#include "storage/wal.h"
#include "storage/page.h"

namespace crimson {
namespace {

// Page payload under torture: [0..8) version, [8..16) checksum of the
// payload region, [16..16+kPayload) bytes derived from (page, version).
constexpr size_t kPayload = 256;

void FillPage(char* d, PageId id, uint64_t version) {
  EncodeFixed64(d, version);
  for (size_t i = 0; i < kPayload; ++i) {
    d[16 + i] = static_cast<char>((id * 31 + version * 7 + i) & 0xff);
  }
  EncodeFixed64(d + 8, Fnv1a64(d + 16, kPayload, /*seed=*/id ^ version));
}

/// True if the page is internally consistent (a torn read -- e.g. a
/// writer mid-mutation or an eviction clobbering a pinned frame --
/// fails the checksum).
bool CheckPage(const char* d, PageId id, uint64_t* version_out) {
  uint64_t version = DecodeFixed64(d);
  uint64_t sum = DecodeFixed64(d + 8);
  if (sum != Fnv1a64(d + 16, kPayload, id ^ version)) return false;
  for (size_t i = 0; i < kPayload; ++i) {
    if (d[16 + i] !=
        static_cast<char>((id * 31 + version * 7 + i) & 0xff)) {
      return false;
    }
  }
  *version_out = version;
  return true;
}

void RunPinMutateTorture(int threads, int ops_per_thread, int n_pages,
                         size_t pool_frames) {
  auto pager = std::move(Pager::Open(NewMemFile())).value();
  BufferPool pool(pager.get(), pool_frames);

  std::vector<PageId> pages(n_pages);
  for (int i = 0; i < n_pages; ++i) {
    auto g = pool.New(&pages[i]);
    ASSERT_TRUE(g.ok());
    FillPage(g->data(), pages[i], 0);
    g->MarkDirty();
  }

  std::vector<std::atomic<uint64_t>> writes(n_pages);
  for (auto& w : writes) w.store(0);
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0xD00D + t);
      // More threads than frames: transient ResourceExhausted is the
      // pool working as specified (all frames pinned); retry. Any
      // other error, or a failed content check, is a real failure.
      auto fetch = [&](PageId id, PageIntent intent) -> Result<PageGuard> {
        for (;;) {
          Result<PageGuard> g = pool.Fetch(id, intent);
          if (g.ok() || !g.status().IsResourceExhausted()) return g;
          std::this_thread::yield();
        }
      };
      for (int op = 0; op < ops_per_thread; ++op) {
        int i = static_cast<int>(rng.Next() % n_pages);
        bool write = (rng.Next() % 4) == 0;  // 1-in-4 ops mutate
        if (write) {
          auto g = fetch(pages[i], PageIntent::kWrite);
          if (!g.ok()) {
            ++failures;
            continue;
          }
          uint64_t version;
          if (!CheckPage(g->data(), pages[i], &version)) ++failures;
          FillPage(g->data(), pages[i], version + 1);
          g->MarkDirty();
          writes[i].fetch_add(1, std::memory_order_relaxed);
        } else {
          auto g = fetch(pages[i], PageIntent::kRead);
          if (!g.ok()) {
            ++failures;
            continue;
          }
          uint64_t version;
          if (!CheckPage(g->data(), pages[i], &version)) ++failures;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  ASSERT_EQ(failures.load(), 0);

  // No lost updates / dirty bits: every page's version equals its
  // write count, through the pool and -- after FlushAll -- on disk.
  ASSERT_TRUE(pool.FlushAll().ok());
  std::vector<char> buf(kPageSize);
  for (int i = 0; i < n_pages; ++i) {
    uint64_t version = 0;
    {
      auto g = pool.Fetch(pages[i]);
      ASSERT_TRUE(g.ok());
      ASSERT_TRUE(CheckPage(g->data(), pages[i], &version)) << "page " << i;
      EXPECT_EQ(version, writes[i].load()) << "page " << i;
    }
    ASSERT_TRUE(pager->ReadPage(pages[i], buf.data()).ok());
    ASSERT_TRUE(CheckPage(buf.data(), pages[i], &version)) << "page " << i;
    EXPECT_EQ(version, writes[i].load()) << "disk page " << i;
  }
}

TEST(BufferPoolTortureTest, PinMutateUnderTinyPool) {
  RunPinMutateTorture(/*threads=*/8, /*ops_per_thread=*/600, /*n_pages=*/24,
                      /*pool_frames=*/8);
}

TEST(BufferPoolTortureTest, StressPinMutateUnderTinyPool) {
  RunPinMutateTorture(/*threads=*/24, /*ops_per_thread=*/4000,
                      /*n_pages=*/64, /*pool_frames=*/8);
}

TEST(BufferPoolTortureTest, PinnedFramesSurviveEvictionChurn) {
  auto pager = std::move(Pager::Open(NewMemFile())).value();
  BufferPool pool(pager.get(), /*capacity=*/8);

  constexpr int kPinned = 3;
  constexpr int kChurnPages = 40;
  std::vector<PageId> pinned(kPinned);
  std::vector<PageId> churn(kChurnPages);
  for (int i = 0; i < kPinned; ++i) {
    auto g = pool.New(&pinned[i]);
    ASSERT_TRUE(g.ok());
    FillPage(g->data(), pinned[i], 100 + i);
    g->MarkDirty();
  }
  for (int i = 0; i < kChurnPages; ++i) {
    auto g = pool.New(&churn[i]);
    ASSERT_TRUE(g.ok());
    FillPage(g->data(), churn[i], 0);
    g->MarkDirty();
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Holders keep long-lived read pins and verify the frame content
  // never changes underneath them while churners force evictions.
  for (int t = 0; t < kPinned; ++t) {
    threads.emplace_back([&, t] {
      auto g = pool.Fetch(pinned[t], PageIntent::kRead);
      if (!g.ok()) {
        ++failures;
        return;
      }
      std::vector<char> snapshot(g->data(), g->data() + 16 + kPayload);
      for (int spin = 0; spin < 400; ++spin) {
        std::this_thread::yield();
        if (memcmp(snapshot.data(), g->data(), snapshot.size()) != 0) {
          ++failures;
          return;
        }
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xABC + t);
      for (int op = 0; op < 800; ++op) {
        PageId id = churn[rng.Next() % kChurnPages];
        auto g = pool.Fetch(id, PageIntent::kRead);
        if (!g.ok()) {
          // With 3 frames pinned long-term, 8 frames total, and 4
          // churners each pinning one page, exhaustion is possible
          // only if every frame is pinned -- it is not an error here,
          // but content corruption would be.
          continue;
        }
        uint64_t version;
        if (!CheckPage(g->data(), id, &version)) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTortureTest, ReadersShareFramesWithActiveWalTransaction) {
  // A durable database: one writer thread runs WAL transactions while
  // reader threads hold read epochs and scan. The pool's latches plus
  // the writer epoch must keep every observed row decodable and every
  // observed state a committed one.
  constexpr const char* kPath = "/tmp/crimson_pool_torture.db";
  std::remove(kPath);
  ASSERT_TRUE(
      Wal::RemoveLog(std::string(kPath) + "-wal", PosixStorageEnv()).ok());
  DatabaseOptions opts;
  opts.buffer_pool_pages = 16;
  opts.durability = Durability::kCommit;
  auto db_or = Database::Open(kPath, opts);
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  auto db = std::move(db_or).value();
  Schema schema({{"id", ColumnType::kInt64}, {"val", ColumnType::kString}});
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(
        db->CreateTable("t", schema, {{"t_by_id", "id", true}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  constexpr int kBatches = 25;
  constexpr int kBatchSize = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < kBatches; ++round) {
        Database::ReadTxn read = db->BeginRead();
        auto table = db->OpenTable("t");
        if (!table.ok()) {
          ++failures;
          return;
        }
        int64_t count = 0;
        Status s = table->Scan([&](const RecordId&, const Row& row) {
          if (std::get<std::string>(row[1]).size() != 64) ++failures;
          ++count;
          return true;
        });
        if (!s.ok() || count % kBatchSize != 0) ++failures;
      }
    });
  }
  for (int b = 0; b < kBatches; ++b) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db->OpenTable("t");
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < kBatchSize; ++i) {
      ASSERT_TRUE(
          table->Insert({int64_t{b} * kBatchSize + i, std::string(64, 'x')})
              .ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  db.reset();
  std::remove(kPath);
  ASSERT_TRUE(
      Wal::RemoveLog(std::string(kPath) + "-wal", PosixStorageEnv()).ok());
}

}  // namespace
}  // namespace crimson
