// Single-writer / multi-reader concurrency tests.
//
// Storage level: shared read transactions (Database::BeginRead) racing
// a write transaction -- readers must only ever observe complete
// committed batches, never a transaction's intermediate state.
//
// Session level: N reader threads doing cold OpenTree binds plus all
// six query kinds racing a writer doing LoadTree / AppendSpeciesData /
// RunExperiment persistence; every reader result must be
// byte-identical to a single-threaded baseline. `*Stress*` variants
// (ctest -C stress -L stress) scale trees, threads, and iterations up.

#include "storage/database.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "crimson/crimson.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"

namespace crimson {
namespace {

// ---------------------------------------------------------------------------
// Storage-level: read epochs vs the writer
// ---------------------------------------------------------------------------

Schema KvSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"payload", ColumnType::kString}});
}

/// Readers under BeginRead race a writer committing fixed-size batches.
/// Without the writer epoch a reader could observe a half-applied
/// batch (or a torn B+Tree split); with it, every observed row count
/// is a multiple of the batch size and ids are contiguous.
void RunEpochExclusionTest(int batches, int batch_size, int reader_threads) {
  auto db = std::move(Database::OpenInMemory()).value();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db->CreateTable("kv", KvSchema(),
                                {{"kv_by_id", "id", /*unique=*/true}})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Readers run a fixed number of rounds rather than spinning on a
  // stop flag: pthread rwlocks prefer readers, so an unbounded reader
  // loop could starve the writer indefinitely.
  const int reader_rounds = batches * 2;
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  readers.reserve(reader_threads);
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&] {
      int64_t last_seen = 0;
      for (int round = 0; round < reader_rounds; ++round) {
        Database::ReadTxn read = db->BeginRead();
        auto table = db->OpenTable("kv");
        if (!table.ok()) {
          ++reader_failures;
          return;
        }
        int64_t count = 0;
        int64_t max_id = -1;
        Status s = table->Scan([&](const RecordId&, const Row& row) {
          int64_t id = std::get<int64_t>(row[0]);
          if (std::get<std::string>(row[1]) !=
              StrFormat("payload-%lld", static_cast<long long>(id))) {
            ++reader_failures;
          }
          if (id > max_id) max_id = id;
          ++count;
          return true;
        });
        read.End();
        if (!s.ok()) ++reader_failures;
        // A read epoch excludes the writer, so only complete batches
        // are ever visible: count is a batch multiple, ids are the
        // contiguous prefix, and counts never go backwards.
        if (count % batch_size != 0) ++reader_failures;
        if (count > 0 && max_id != count - 1) ++reader_failures;
        if (count < last_seen) ++reader_failures;
        last_seen = count;
      }
    });
  }

  for (int b = 0; b < batches; ++b) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db->OpenTable("kv");
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < batch_size; ++i) {
      int64_t id = static_cast<int64_t>(b) * batch_size + i;
      ASSERT_TRUE(
          table
              ->Insert({id, StrFormat("payload-%lld",
                                      static_cast<long long>(id))})
              .ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);

  auto final_table = db->OpenTable("kv");
  ASSERT_TRUE(final_table.ok());
  EXPECT_EQ(final_table->row_count(),
            static_cast<uint64_t>(batches) * batch_size);
}

TEST(ReadEpochTest, ReadersOnlySeeCompleteCommittedBatches) {
  RunEpochExclusionTest(/*batches=*/30, /*batch_size=*/7,
                        /*reader_threads=*/4);
}

TEST(ReadEpochTest, StressReadersOnlySeeCompleteCommittedBatches) {
  RunEpochExclusionTest(/*batches=*/150, /*batch_size=*/13,
                        /*reader_threads=*/8);
}

TEST(ReadEpochTest, NestedBeginFromSameThreadFails) {
  auto db = std::move(Database::OpenInMemory()).value();
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE(db->Begin().status().IsFailedPrecondition());
  EXPECT_TRUE(db->Flush().IsFailedPrecondition());
  ASSERT_TRUE(txn->Commit().ok());
  // After commit a new transaction (and a flush) work again.
  auto txn2 = db->Begin();
  ASSERT_TRUE(txn2.ok());
  ASSERT_TRUE(txn2->Commit().ok());
  EXPECT_TRUE(db->Flush().ok());
}

// ---------------------------------------------------------------------------
// Session-level: cold binds + all six query kinds vs a writer
// ---------------------------------------------------------------------------

constexpr const char* kDbPath = "/tmp/crimson_concurrent_access.db";

struct GoldTree {
  PhyloTree tree;
  std::map<std::string, std::string> sequences;
};

GoldTree MakeGold(uint32_t n_leaves, uint64_t seed) {
  GoldTree g;
  Rng rng(seed);
  YuleOptions opts;
  opts.n_leaves = n_leaves;
  g.tree = std::move(SimulateYule(opts, &rng)).value();
  SeqEvolveOptions seq_opts;
  seq_opts.seq_length = 96;
  auto evolver = SequenceEvolver::Create(seq_opts);
  g.sequences = std::move(evolver->EvolveLeaves(g.tree, &rng)).value();
  return g;
}

std::string TreeName(int i) { return StrFormat("tree%d", i); }

/// Creates the shared on-disk database with `n_trees` gold trees.
void BuildSharedDb(int n_trees, uint32_t n_leaves) {
  std::remove(kDbPath);
  CrimsonOptions opts;
  opts.db_path = kDbPath;
  auto session = std::move(Crimson::Open(opts)).value();
  for (int i = 0; i < n_trees; ++i) {
    GoldTree gold = MakeGold(n_leaves, 0xC0FFEE + i);
    ASSERT_TRUE(session->LoadTree(TreeName(i), gold.tree).ok());
    ASSERT_TRUE(
        session->AppendSpeciesData(TreeName(i), gold.sequences).ok());
  }
  ASSERT_TRUE(session->Flush().ok());
}

/// The six query kinds against an n-leaf gold tree (leaves S0..S{n-1}).
std::vector<QueryRequest> SixKinds(uint32_t n_leaves) {
  const std::string a = StrFormat("S%u", n_leaves / 7);
  const std::string b = StrFormat("S%u", n_leaves - 2);
  return {
      QueryRequest(LcaQuery{a, b}),
      QueryRequest(ProjectQuery{{"S1", a, b, "S0"}}),
      QueryRequest(SampleUniformQuery{10}),
      QueryRequest(SampleTimeQuery{8, 0.5}),
      QueryRequest(CladeQuery{{"S2", "S3", a}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
}

std::unique_ptr<Crimson> OpenSharedSession(size_t pool_pages = 128) {
  CrimsonOptions opts;
  opts.db_path = kDbPath;
  opts.buffer_pool_pages = pool_pages;
  opts.batch_workers = 8;
  opts.seed = 42;
  auto c = Crimson::Open(opts);
  EXPECT_TRUE(c.ok()) << c.status();
  return std::move(c).value();
}

/// Concurrent cold binds + all six kinds must reproduce a sequential
/// session byte-for-byte: binds race across threads (parallel storage
/// reads), then the per-tree batches consume tickets in the same
/// global order as the baseline, so even the sampling draws match.
void RunColdBindIdentityTest(int n_trees, uint32_t n_leaves,
                             size_t pool_pages) {
  BuildSharedDb(n_trees, n_leaves);
  std::vector<QueryRequest> requests = SixKinds(n_leaves);

  // Sequential baseline: bind + execute in tree order.
  std::vector<std::vector<std::string>> baseline(n_trees);
  std::vector<std::string> baseline_nexus(n_trees);
  {
    auto session = OpenSharedSession(pool_pages);
    for (int i = 0; i < n_trees; ++i) {
      auto ref = session->OpenTree(TreeName(i));
      ASSERT_TRUE(ref.ok()) << ref.status();
      for (const QueryRequest& request : requests) {
        auto r = session->Execute(*ref, request);
        ASSERT_TRUE(r.ok()) << r.status();
        baseline[i].push_back(RenderResult(*r));
      }
      auto nexus = session->ExportNexus(*ref);
      ASSERT_TRUE(nexus.ok());
      baseline_nexus[i] = std::move(*nexus);
    }
  }

  // Concurrent session: every tree bound (and exported) cold from its
  // own thread, racing the others through the storage engine.
  auto session = OpenSharedSession(pool_pages);
  std::vector<TreeRef> refs(n_trees);
  std::vector<std::string> nexus(n_trees);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(n_trees);
    for (int i = 0; i < n_trees; ++i) {
      threads.emplace_back([&, i] {
        auto ref = session->OpenTree(TreeName(i));
        if (!ref.ok()) {
          ++failures;
          return;
        }
        refs[i] = *ref;
        auto doc = session->ExportNexus(*ref);
        if (!doc.ok()) {
          ++failures;
          return;
        }
        nexus[i] = std::move(*doc);
      });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_EQ(failures.load(), 0);
  for (int i = 0; i < n_trees; ++i) {
    EXPECT_EQ(nexus[i], baseline_nexus[i]) << TreeName(i);
  }

  // Per-tree batches in baseline order: tickets line up, so all six
  // kinds (sampling included) must be byte-identical.
  for (int i = 0; i < n_trees; ++i) {
    auto results = session->ExecuteBatch(refs[i], requests);
    ASSERT_EQ(results.size(), requests.size());
    for (size_t q = 0; q < requests.size(); ++q) {
      ASSERT_TRUE(results[q].ok()) << results[q].status();
      EXPECT_EQ(RenderResult(*results[q]), baseline[i][q])
          << TreeName(i) << " query " << q;
    }
  }
}

TEST(ConcurrentAccessTest, ColdBindsAndSixKindsMatchSequentialBaseline) {
  RunColdBindIdentityTest(/*n_trees=*/6, /*n_leaves=*/96, /*pool_pages=*/64);
}

TEST(ConcurrentAccessTest,
     StressColdBindsAndSixKindsMatchSequentialBaseline) {
  RunColdBindIdentityTest(/*n_trees=*/12, /*n_leaves=*/256, /*pool_pages=*/64);
}

/// Reader threads loop over deterministic queries + storage reads
/// while one writer loads new trees, appends species data, and
/// persists experiments. Deterministic reader results must stay
/// byte-identical to the pre-writer baseline; sampling draws stay
/// structurally valid (their tickets interleave with the writer's
/// experiment tickets, which is exactly the unspecified-order case the
/// determinism contract scopes out).
void RunReadersVsWriterTest(int n_trees, uint32_t n_leaves,
                            int reader_threads, int reader_rounds,
                            int writer_trees) {
  BuildSharedDb(n_trees, n_leaves);
  auto session = OpenSharedSession(/*pool_pages=*/128);

  // Deterministic kinds only (no tickets consumed by these).
  std::vector<QueryRequest> det = {
      QueryRequest(LcaQuery{"S1", StrFormat("S%u", n_leaves - 2)}),
      QueryRequest(ProjectQuery{{"S0", "S1", "S2", "S3"}}),
      QueryRequest(CladeQuery{{"S2", "S3", "S4"}}),
      QueryRequest(PatternQuery{"(S1,S2);", false}),
  };
  std::vector<std::vector<std::string>> baseline(n_trees);
  std::vector<TreeRef> refs(n_trees);
  for (int i = 0; i < n_trees; ++i) {
    auto ref = session->OpenTree(TreeName(i));
    ASSERT_TRUE(ref.ok());
    refs[i] = *ref;
    for (const QueryRequest& request : det) {
      auto r = session->Execute(refs[i], request);
      ASSERT_TRUE(r.ok()) << r.status();
      baseline[i].push_back(RenderResult(*r));
    }
  }

  std::atomic<int> failures{0};
  std::atomic<int64_t> writer_experiment{-1};

  std::thread writer([&] {
    ExperimentSpec spec;
    spec.algorithms = {"nj"};
    SelectionSpec sel;
    sel.kind = SelectionSpec::Kind::kUniform;
    sel.k = 8;
    spec.selections = {sel};
    spec.replicates = 1;
    spec.compute_triplets = false;
    for (int w = 0; w < writer_trees; ++w) {
      GoldTree gold = MakeGold(n_leaves / 2, 0xBEEF00 + w);
      const std::string name = StrFormat("writer%d", w);
      auto load = session->LoadTree(name, gold.tree);
      if (!load.ok()) {
        ++failures;
        return;
      }
      if (!session->AppendSpeciesData(name, gold.sequences).ok()) {
        ++failures;
        return;
      }
      auto report = session->RunExperiment(load->ref, spec);
      if (!report.ok()) {
        ++failures;
        return;
      }
      writer_experiment.store(report->experiment_id,
                              std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(reader_threads);
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < reader_rounds; ++round) {
        int i = (t + round) % n_trees;
        for (size_t q = 0; q < det.size(); ++q) {
          auto r = session->Execute(refs[i], det[q]);
          if (!r.ok() || RenderResult(*r) != baseline[i][q]) {
            ++failures;
          }
        }
        // Sampling kinds run too (racing the writer's tickets):
        // results must be structurally valid draws from this tree.
        auto uni = session->Execute(refs[i], SampleUniformQuery{5});
        if (!uni.ok() ||
            std::get<SampleAnswer>(*uni).species.size() != 5) {
          ++failures;
        }
        auto timed = session->Execute(refs[i], SampleTimeQuery{4, 0.5});
        if (!timed.ok() ||
            std::get<SampleAnswer>(*timed).species.size() != 4) {
          ++failures;
        }
        if (!session->QueryHistory(5).ok()) ++failures;
        auto trees = session->ListTrees();
        if (!trees.ok() || trees->size() < static_cast<size_t>(n_trees)) {
          ++failures;
        }
        if (!session->ExportNexus(refs[i]).ok()) ++failures;
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);

  // The writer's persisted experiments replay on the live session.
  int64_t experiment_id = writer_experiment.load(std::memory_order_acquire);
  ASSERT_GE(experiment_id, 0);
  auto replay = session->RerunExperiment(experiment_id);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->runs.size(), 1u);
}

TEST(ConcurrentAccessTest, ReadersRaceWriterWithByteIdenticalResults) {
  RunReadersVsWriterTest(/*n_trees=*/4, /*n_leaves=*/64,
                         /*reader_threads=*/4, /*reader_rounds=*/8,
                         /*writer_trees=*/3);
}

TEST(ConcurrentAccessTest, StressReadersRaceWriterWithByteIdenticalResults) {
  RunReadersVsWriterTest(/*n_trees=*/6, /*n_leaves=*/128,
                         /*reader_threads=*/8, /*reader_rounds=*/24,
                         /*writer_trees=*/8);
}

}  // namespace
}  // namespace crimson
