// FaultInjectionEnv: a memory-backed StorageEnv that simulates crashes
// at arbitrary I/O boundaries for deterministic recovery testing.
//
// Every write/sync/truncate across all files of the environment bumps
// one global op counter. Arming a fail point makes the op with that
// index -- and every op after it -- fail with IOError (sticky), like a
// process that lost its disk; a torn fail point additionally persists
// a prefix of the failing write, simulating a partial-sector write.
//
// File contents survive File-object destruction, so dropping a session
// and reopening against the same environment models a process crash.
// The environment tracks which bytes were covered by a successful
// Sync: CrashToDurable() reverts every file to its last-synced state
// (and un-creates files whose directory entry was never sync_dir'd),
// modelling the strictest interpretation of a power failure.

#ifndef CRIMSON_TESTS_STORAGE_FAULT_INJECTION_H_
#define CRIMSON_TESTS_STORAGE_FAULT_INJECTION_H_

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/file.h"

namespace crimson {
namespace test {

class FaultInjectionEnv {
 public:
  FaultInjectionEnv() : inner_(std::make_shared<Inner>()) {}

  /// StorageEnv whose files live in (and persist across reopens of)
  /// this environment.
  StorageEnv env() {
    StorageEnv e;
    auto inner = inner_;
    e.open_file =
        [inner](const std::string& path) -> Result<std::unique_ptr<File>> {
      std::lock_guard<std::mutex> lock(inner->mu);
      FileState& fs = inner->files[path];
      if (!fs.exists) {
        fs.exists = true;
        fs.current.clear();
      }
      return std::unique_ptr<File>(new FaultFile(inner, path));
    };
    e.file_exists = [inner](const std::string& path) -> Result<bool> {
      std::lock_guard<std::mutex> lock(inner->mu);
      auto it = inner->files.find(path);
      return it != inner->files.end() && it->second.exists;
    };
    e.remove_file = [inner](const std::string& path) -> Status {
      std::lock_guard<std::mutex> lock(inner->mu);
      auto it = inner->files.find(path);
      // The durable entry (if any) lingers until the next sync_dir --
      // an unlink is not crash-durable until its directory is synced.
      if (it != inner->files.end()) it->second.exists = false;
      return Status::OK();
    };
    e.sync_dir = [inner](const std::string&) -> Status {
      std::lock_guard<std::mutex> lock(inner->mu);
      CRIMSON_RETURN_IF_ERROR(inner->CountOpLocked(nullptr, nullptr, 0));
      for (auto& [path, fs] : inner->files) fs.exists_durable = fs.exists;
      return Status::OK();
    };
    return e;
  }

  /// The op with 1-based index `op_index` (counted from the last
  /// ResetOpCount) and every later op fail with IOError. With
  /// torn=true the failing write persists its first half.
  void ArmFailPoint(uint64_t op_index, bool torn = false) {
    std::lock_guard<std::mutex> lock(inner_->mu);
    inner_->fail_at = op_index;
    inner_->torn = torn;
    inner_->triggered = false;
  }

  void Disarm() {
    std::lock_guard<std::mutex> lock(inner_->mu);
    inner_->fail_at = 0;
    inner_->triggered = false;
  }

  void ResetOpCount() {
    std::lock_guard<std::mutex> lock(inner_->mu);
    inner_->op_count = 0;
  }

  uint64_t ops_performed() const {
    std::lock_guard<std::mutex> lock(inner_->mu);
    return inner_->op_count;
  }

  bool triggered() const {
    std::lock_guard<std::mutex> lock(inner_->mu);
    return inner_->triggered;
  }

  /// Simulates power loss: every file reverts to its last successfully
  /// synced content, and files whose creation (or deletion) was never
  /// made durable with sync_dir revert their existence too.
  void CrashToDurable() {
    std::lock_guard<std::mutex> lock(inner_->mu);
    for (auto it = inner_->files.begin(); it != inner_->files.end();) {
      FileState& fs = it->second;
      fs.exists = fs.exists_durable;
      fs.current = fs.durable;
      if (!fs.exists && !fs.exists_durable) {
        it = inner_->files.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Raw bytes of one file ("" when absent) -- for byte-equality checks.
  std::string FileContents(const std::string& path) const {
    std::lock_guard<std::mutex> lock(inner_->mu);
    auto it = inner_->files.find(path);
    return it != inner_->files.end() && it->second.exists ? it->second.current
                                                          : std::string();
  }

 private:
  struct FileState {
    std::string current;         // content visible to the process
    std::string durable;         // content as of the last Sync
    bool exists = false;         // directory entry (process view)
    bool exists_durable = false; // directory entry survived sync_dir
  };

  struct Inner {
    mutable std::mutex mu;
    std::map<std::string, FileState> files;
    uint64_t op_count = 0;
    uint64_t fail_at = 0;  // 0 = disarmed
    bool torn = false;
    bool triggered = false;

    /// Counts one write/sync op; returns IOError at/after the fail
    /// point. For a torn write, persists the first half of (data, n)
    /// into fs before failing.
    Status CountOpLocked(FileState* fs, const char* data, size_t n,
                         uint64_t offset = 0) {
      ++op_count;
      if (fail_at == 0 || op_count < fail_at) return Status::OK();
      if (op_count == fail_at && torn && fs != nullptr && data != nullptr &&
          n > 1) {
        size_t half = n / 2;
        if (fs->current.size() < offset + half) {
          fs->current.resize(offset + half);
        }
        memcpy(&fs->current[offset], data, half);
      }
      triggered = true;
      return Status::IOError("injected fault");
    }
  };

  class FaultFile final : public File {
   public:
    FaultFile(std::shared_ptr<Inner> inner, std::string path)
        : inner_(std::move(inner)), path_(std::move(path)) {}

    Status Read(uint64_t offset, size_t n, char* scratch) const override {
      std::lock_guard<std::mutex> lock(inner_->mu);
      const FileState& fs = inner_->files[path_];
      if (offset + n > fs.current.size()) {
        return Status::IOError("fault-injection read past EOF");
      }
      memcpy(scratch, fs.current.data() + offset, n);
      return Status::OK();
    }

    Status Write(uint64_t offset, const char* data, size_t n) override {
      std::lock_guard<std::mutex> lock(inner_->mu);
      FileState& fs = inner_->files[path_];
      CRIMSON_RETURN_IF_ERROR(inner_->CountOpLocked(&fs, data, n, offset));
      if (fs.current.size() < offset + n) fs.current.resize(offset + n);
      memcpy(&fs.current[offset], data, n);
      return Status::OK();
    }

    Status Sync() override {
      std::lock_guard<std::mutex> lock(inner_->mu);
      FileState& fs = inner_->files[path_];
      CRIMSON_RETURN_IF_ERROR(inner_->CountOpLocked(nullptr, nullptr, 0));
      fs.durable = fs.current;
      return Status::OK();
    }

    uint64_t Size() const override {
      std::lock_guard<std::mutex> lock(inner_->mu);
      return inner_->files[path_].current.size();
    }

    Status Truncate(uint64_t new_size) override {
      std::lock_guard<std::mutex> lock(inner_->mu);
      FileState& fs = inner_->files[path_];
      CRIMSON_RETURN_IF_ERROR(inner_->CountOpLocked(nullptr, nullptr, 0));
      fs.current.resize(new_size);
      return Status::OK();
    }

   private:
    std::shared_ptr<Inner> inner_;
    const std::string path_;
  };

  std::shared_ptr<Inner> inner_;
};

}  // namespace test
}  // namespace crimson

#endif  // CRIMSON_TESTS_STORAGE_FAULT_INJECTION_H_
