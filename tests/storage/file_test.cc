#include "storage/file.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace crimson {
namespace {

class FileTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      path_ = testing::TempDir() + "/crimson_file_test.bin";
      RemoveFile(path_);
      auto r = OpenPosixFile(path_);
      ASSERT_TRUE(r.ok()) << r.status();
      file_ = std::move(r).value();
    } else {
      file_ = NewMemFile();
    }
  }

  void TearDown() override {
    file_.reset();
    if (!path_.empty()) RemoveFile(path_);
  }

  std::string path_;
  std::unique_ptr<File> file_;
};

TEST_P(FileTest, StartsEmpty) { EXPECT_EQ(file_->Size(), 0u); }

TEST_P(FileTest, WriteThenReadBack) {
  ASSERT_TRUE(file_->Write(0, "hello", 5).ok());
  EXPECT_EQ(file_->Size(), 5u);
  char buf[5];
  ASSERT_TRUE(file_->Read(0, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST_P(FileTest, WriteAtOffsetExtends) {
  ASSERT_TRUE(file_->Write(100, "xy", 2).ok());
  EXPECT_GE(file_->Size(), 102u);
  char buf[2];
  ASSERT_TRUE(file_->Read(100, 2, buf).ok());
  EXPECT_EQ(std::string(buf, 2), "xy");
}

TEST_P(FileTest, ReadPastEndFails) {
  ASSERT_TRUE(file_->Write(0, "abc", 3).ok());
  char buf[10];
  EXPECT_FALSE(file_->Read(0, 10, buf).ok());
  EXPECT_FALSE(file_->Read(100, 1, buf).ok());
}

TEST_P(FileTest, OverwriteInPlace) {
  ASSERT_TRUE(file_->Write(0, "aaaa", 4).ok());
  ASSERT_TRUE(file_->Write(1, "bb", 2).ok());
  char buf[4];
  ASSERT_TRUE(file_->Read(0, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "abba");
}

TEST_P(FileTest, TruncateGrowsAndShrinks) {
  ASSERT_TRUE(file_->Write(0, "abcdef", 6).ok());
  ASSERT_TRUE(file_->Truncate(3).ok());
  EXPECT_EQ(file_->Size(), 3u);
  ASSERT_TRUE(file_->Truncate(10).ok());
  EXPECT_EQ(file_->Size(), 10u);
  char buf[3];
  ASSERT_TRUE(file_->Read(0, 3, buf).ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
}

TEST_P(FileTest, SyncSucceeds) {
  ASSERT_TRUE(file_->Write(0, "z", 1).ok());
  EXPECT_TRUE(file_->Sync().ok());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, FileTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST(PosixFileTest, PersistsAcrossReopen) {
  std::string path = testing::TempDir() + "/crimson_reopen_test.bin";
  RemoveFile(path);
  {
    auto f = OpenPosixFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(0, "persist", 7).ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  {
    auto f = OpenPosixFile(path);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ((*f)->Size(), 7u);
    char buf[7];
    ASSERT_TRUE((*f)->Read(0, 7, buf).ok());
    EXPECT_EQ(std::string(buf, 7), "persist");
  }
  RemoveFile(path);
}

}  // namespace
}  // namespace crimson
