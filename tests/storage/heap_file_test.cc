#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace crimson {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p = Pager::Open(NewMemFile());
    ASSERT_TRUE(p.ok());
    pager_ = std::move(p).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 64);
    auto h = HeapFile::Create(pool_.get());
    ASSERT_TRUE(h.ok());
    heap_ = std::make_unique<HeapFile>(std::move(h).value());
  }

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, InsertAndGet) {
  auto rid = heap_->Insert(Slice("record-1"));
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(heap_->Get(*rid, &out).ok());
  EXPECT_EQ(out, "record-1");
  EXPECT_EQ(heap_->record_count(), 1u);
}

TEST_F(HeapFileTest, EmptyRecordAllowed) {
  auto rid = heap_->Insert(Slice(""));
  ASSERT_TRUE(rid.ok());
  std::string out = "junk";
  ASSERT_TRUE(heap_->Get(*rid, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(HeapFileTest, ManyRecordsSpanPages) {
  std::vector<RecordId> rids;
  for (int i = 0; i < 5000; ++i) {
    std::string rec = "value-" + std::to_string(i);
    auto rid = heap_->Insert(Slice(rec));
    ASSERT_TRUE(rid.ok()) << i;
    rids.push_back(*rid);
  }
  EXPECT_EQ(heap_->record_count(), 5000u);
  // Spot check & ensure multiple pages were used.
  std::set<PageId> pages;
  for (int i = 0; i < 5000; ++i) {
    pages.insert(rids[i].page);
    std::string out;
    ASSERT_TRUE(heap_->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "value-" + std::to_string(i));
  }
  EXPECT_GT(pages.size(), 1u);
}

TEST_F(HeapFileTest, OverflowRecordRoundTrip) {
  // Sequences with thousands of characters (paper §1) exceed one page.
  std::string big(100000, 'G');
  for (size_t i = 0; i < big.size(); ++i) big[i] = "ACGT"[i % 4];
  auto rid = heap_->Insert(Slice(big));
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(heap_->Get(*rid, &out).ok());
  EXPECT_EQ(out, big);
}

TEST_F(HeapFileTest, MixedInlineAndOverflow) {
  std::string big(30000, 'T');
  auto r1 = heap_->Insert(Slice("small"));
  auto r2 = heap_->Insert(Slice(big));
  auto r3 = heap_->Insert(Slice("after"));
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  std::string out;
  ASSERT_TRUE(heap_->Get(*r2, &out).ok());
  EXPECT_EQ(out.size(), big.size());
  ASSERT_TRUE(heap_->Get(*r3, &out).ok());
  EXPECT_EQ(out, "after");
}

TEST_F(HeapFileTest, DeleteTombstones) {
  auto r1 = heap_->Insert(Slice("a"));
  auto r2 = heap_->Insert(Slice("b"));
  ASSERT_TRUE(heap_->Delete(*r1).ok());
  std::string out;
  EXPECT_TRUE(heap_->Get(*r1, &out).IsNotFound());
  EXPECT_TRUE(heap_->Get(*r2, &out).ok());
  EXPECT_EQ(heap_->record_count(), 1u);
  // Double delete reports NotFound.
  EXPECT_TRUE(heap_->Delete(*r1).IsNotFound());
}

TEST_F(HeapFileTest, DeleteOverflowFreesChain) {
  std::string big(50000, 'C');
  auto rid = heap_->Insert(Slice(big));
  ASSERT_TRUE(rid.ok());
  uint32_t pages_before = pager_->page_count();
  ASSERT_TRUE(heap_->Delete(*rid).ok());
  // Freed overflow pages are reused by the next big insert instead of
  // growing the file.
  auto rid2 = heap_->Insert(Slice(big));
  ASSERT_TRUE(rid2.ok());
  EXPECT_EQ(pager_->page_count(), pages_before);
}

TEST_F(HeapFileTest, ScanVisitsLiveRecordsInOrder) {
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    rids.push_back(*heap_->Insert(Slice("r" + std::to_string(i))));
  }
  ASSERT_TRUE(heap_->Delete(rids[10]).ok());
  ASSERT_TRUE(heap_->Delete(rids[50]).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(heap_->Scan([&](const RecordId&, const Slice& rec) {
                    seen.push_back(rec.ToString());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 98u);
  EXPECT_EQ(seen[0], "r0");
  // Deleted records are absent.
  for (const std::string& s : seen) {
    EXPECT_NE(s, "r10");
    EXPECT_NE(s, "r50");
  }
}

TEST_F(HeapFileTest, ScanInterleavesInlineAndOverflowInSlotOrder) {
  // Overflow reassembly drops and re-takes the page guard mid-page
  // (recursively latching one frame is UB); the slot walk must still
  // visit every record exactly once, in slot order, with intact bytes.
  std::vector<std::string> expect;
  for (int i = 0; i < 12; ++i) {
    std::string rec;
    if (i % 3 == 1) {
      rec.assign(6000 + i, static_cast<char>('A' + i));  // overflow
    } else {
      rec = "inline-" + std::to_string(i);
    }
    ASSERT_TRUE(heap_->Insert(Slice(rec)).ok()) << i;
    expect.push_back(std::move(rec));
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(heap_->Scan([&](const RecordId&, const Slice& rec) {
                    seen.push_back(rec.ToString());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, expect);

  // Early stop *on* an overflow record still works.
  int count = 0;
  ASSERT_TRUE(heap_->Scan([&](const RecordId&, const Slice&) {
                    return ++count < 2;
                  })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    heap_->Insert(Slice("x")).value();
  }
  int count = 0;
  ASSERT_TRUE(heap_->Scan([&](const RecordId&, const Slice&) {
                    return ++count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(HeapFileTest, ReopenRecountsRecords) {
  for (int i = 0; i < 500; ++i) {
    heap_->Insert(Slice("rec" + std::to_string(i))).value();
  }
  auto r = heap_->Insert(Slice("doomed"));
  ASSERT_TRUE(heap_->Delete(*r).ok());
  PageId first = heap_->first_page();
  auto reopened = HeapFile::Open(pool_.get(), first);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->record_count(), 500u);
  // Appends continue to work after reopen (tail rediscovered).
  auto rid = reopened->Insert(Slice("new"));
  ASSERT_TRUE(rid.ok());
  std::string out;
  EXPECT_TRUE(reopened->Get(*rid, &out).ok());
}

TEST_F(HeapFileTest, GetInvalidSlotFails) {
  heap_->Insert(Slice("only")).value();
  std::string out;
  RecordId bogus{heap_->first_page(), 99};
  EXPECT_TRUE(heap_->Get(bogus, &out).IsNotFound());
}

TEST_F(HeapFileTest, RecordIdPackUnpackRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    RecordId rid;
    rid.page = static_cast<PageId>(rng.Uniform(1u << 30));
    rid.slot = static_cast<uint16_t>(rng.Uniform(1u << 16));
    EXPECT_EQ(RecordId::Unpack(rid.Pack()), rid);
  }
}

}  // namespace
}  // namespace crimson
