#include "storage/pager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace crimson {
namespace {

std::unique_ptr<Pager> NewMemPager() {
  auto r = Pager::Open(NewMemFile());
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(PagerTest, FreshFileHasHeaderOnly) {
  auto pager = NewMemPager();
  EXPECT_EQ(pager->page_count(), 1u);
  EXPECT_EQ(pager->catalog_root(), kInvalidPageId);
}

TEST(PagerTest, AllocateExtendsFile) {
  auto pager = NewMemPager();
  auto p1 = pager->AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  auto p2 = pager->AllocatePage();
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(*p2, 2u);
  EXPECT_EQ(pager->page_count(), 3u);
}

TEST(PagerTest, WriteReadRoundTrip) {
  auto pager = NewMemPager();
  PageId id = *pager->AllocatePage();
  std::vector<char> out(kPageSize, 0);
  memcpy(out.data(), "payload", 7);
  out[0] = static_cast<char>(PageType::kHeap);
  ASSERT_TRUE(pager->WritePage(id, out.data()).ok());
  std::vector<char> in(kPageSize);
  ASSERT_TRUE(pager->ReadPage(id, in.data()).ok());
  EXPECT_EQ(memcmp(in.data(), out.data(), kPageSize), 0);
}

TEST(PagerTest, OutOfRangeAccessRejected) {
  auto pager = NewMemPager();
  std::vector<char> buf(kPageSize);
  EXPECT_TRUE(pager->ReadPage(99, buf.data()).IsOutOfRange());
  EXPECT_TRUE(pager->WritePage(99, buf.data()).IsOutOfRange());
}

TEST(PagerTest, FreelistReusesPages) {
  auto pager = NewMemPager();
  PageId a = *pager->AllocatePage();
  PageId b = *pager->AllocatePage();
  ASSERT_TRUE(pager->FreePage(a).ok());
  ASSERT_TRUE(pager->FreePage(b).ok());
  // LIFO freelist: b then a, before extending the file again.
  EXPECT_EQ(*pager->AllocatePage(), b);
  EXPECT_EQ(*pager->AllocatePage(), a);
  EXPECT_EQ(*pager->AllocatePage(), 3u);
}

TEST(PagerTest, CannotFreeHeaderOrUnknown) {
  auto pager = NewMemPager();
  EXPECT_TRUE(pager->FreePage(kHeaderPageId).IsInvalidArgument());
  EXPECT_TRUE(pager->FreePage(50).IsInvalidArgument());
}

TEST(PagerTest, HeaderRoundTripsThroughFile) {
  std::string path = testing::TempDir() + "/crimson_pager_header.db";
  RemoveFile(path);
  {
    auto file = OpenPosixFile(path);
    ASSERT_TRUE(file.ok());
    auto pager = Pager::Open(std::move(*file));
    ASSERT_TRUE(pager.ok());
    (*pager)->AllocatePage().value();
    ASSERT_TRUE((*pager)->SetCatalogRoot(1).ok());
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  {
    auto file = OpenPosixFile(path);
    ASSERT_TRUE(file.ok());
    auto pager = Pager::Open(std::move(*file));
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 2u);
    EXPECT_EQ((*pager)->catalog_root(), 1u);
  }
  RemoveFile(path);
}

TEST(PagerTest, RejectsCorruptMagic) {
  auto file = NewMemFile();
  std::vector<char> junk(kPageSize, 'J');
  ASSERT_TRUE(file->Write(0, junk.data(), junk.size()).ok());
  auto pager = Pager::Open(std::move(file));
  ASSERT_FALSE(pager.ok());
  EXPECT_TRUE(pager.status().IsCorruption());
}

TEST(PagerTest, FreedPageRejectsNonFreeReallocation) {
  // Corrupting the freelist (pointing at a non-free page) is detected.
  auto pager = NewMemPager();
  PageId a = *pager->AllocatePage();
  ASSERT_TRUE(pager->FreePage(a).ok());
  // Overwrite the freed page with a heap page marker.
  std::vector<char> buf(kPageSize, 0);
  buf[0] = static_cast<char>(PageType::kHeap);
  ASSERT_TRUE(pager->WritePage(a, buf.data()).ok());
  auto alloc = pager->AllocatePage();
  ASSERT_FALSE(alloc.ok());
  EXPECT_TRUE(alloc.status().IsCorruption());
}

}  // namespace
}  // namespace crimson
