// Crash recovery tests.
//
// Storage level: transaction atomicity (commit survives a crash,
// uncommitted work disappears), in-session abort, checkpoint
// truncation, durability-off compatibility, and large transactions
// that spill past the buffer pool.
//
// Session level: the crash-point suites run a real workload (StoreTree
// per-row, bulk-load ingest, RunExperiment persistence) against a
// fault-injection disk, crash at *every* write/sync boundary, reopen,
// and assert the database recovers to the pre- or post-commit state --
// verified byte-for-byte through all six query kinds plus the
// persisted experiment rows. `*Stress*` variants (ctest -C stress -L
// stress) scale the trees and grids up.

#include "storage/recovery.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "crimson/crimson.h"
#include "fault_injection.h"
#include "sim/seq_evolve.h"
#include "sim/tree_sim.h"
#include "storage/database.h"
#include "storage/wal.h"

namespace crimson {
namespace {

// ---------------------------------------------------------------------------
// Storage-level transaction + recovery tests
// ---------------------------------------------------------------------------

constexpr const char* kDbPath = "crash.db";

DatabaseOptions DurableOptions(test::FaultInjectionEnv* env,
                               size_t pool_pages = 64) {
  DatabaseOptions opts;
  opts.buffer_pool_pages = pool_pages;
  opts.durability = Durability::kCommit;
  opts.env = env->env();
  return opts;
}

Schema KvSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"payload", ColumnType::kString}});
}

Result<Table> OpenOrCreateKv(Database* db) {
  auto has = db->HasTable("kv");
  if (has.ok() && *has) return db->OpenTable("kv");
  return db->CreateTable("kv", KvSchema(),
                         {{"kv_by_id", "id", /*unique=*/true}});
}

std::map<int64_t, std::string> ReadAll(Table* table) {
  std::map<int64_t, std::string> out;
  EXPECT_TRUE(table
                  ->Scan([&](const RecordId&, const Row& row) {
                    out[std::get<int64_t>(row[0])] =
                        std::get<std::string>(row[1]);
                    return true;
                  })
                  .ok());
  return out;
}

TEST(DatabaseTxnTest, CommittedTxnSurvivesCrash) {
  test::FaultInjectionEnv env;
  {
    auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = OpenOrCreateKv(db.get());
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(table->Insert({i, std::string(100, 'v')}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
    // Crash: drop the database without Flush/Checkpoint.
  }
  env.CrashToDurable();
  auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(ReadAll(&*table).size(), 20u);
}

TEST(DatabaseTxnTest, UncommittedTxnDisappearsOnCrash) {
  test::FaultInjectionEnv env;
  {
    auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      auto table = OpenOrCreateKv(db.get());
      ASSERT_TRUE(table.ok());
      ASSERT_TRUE(table->Insert({1, "committed"}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db->OpenTable("kv");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(table->Insert({2, "uncommitted"}).ok());
    // Crash with the txn open: neither Commit nor clean shutdown.
  }
  env.CrashToDurable();
  auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  auto rows = ReadAll(&*table);
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.count(1), 1u);
}

TEST(DatabaseTxnTest, AbortRollsBackInSession) {
  test::FaultInjectionEnv env;
  auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = OpenOrCreateKv(db.get());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(table->Insert({1, "gone"}).ok());
    txn->Abort();
  }
  auto has = db->HasTable("kv");
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has) << "aborted CreateTable must not linger";
  // The engine keeps working after the rollback.
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  auto table = OpenOrCreateKv(db.get());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Insert({7, "kept"}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(ReadAll(&*table).count(7), 1u);
}

TEST(DatabaseTxnTest, MutationOutsideTxnRejected) {
  test::FaultInjectionEnv env;
  auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
  auto table = [&] {
    auto txn = db->Begin();
    EXPECT_TRUE(txn.ok());
    auto t = OpenOrCreateKv(db.get());
    EXPECT_TRUE(txn->Commit().ok());
    return t;
  }();
  ASSERT_TRUE(table.ok());
  auto insert = table->Insert({1, "naked"});
  ASSERT_FALSE(insert.ok());
  EXPECT_TRUE(insert.status().IsFailedPrecondition()) << insert.status();
}

TEST(DatabaseTxnTest, CheckpointTruncatesWalAndSkipsReplay) {
  test::FaultInjectionEnv env;
  const std::string seg1 = WalSegmentPath(std::string(kDbPath) + "-wal", 1);
  {
    auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = OpenOrCreateKv(db.get());
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(table->Insert({i, std::string(200, 'c')}).ok());
    }
    ASSERT_TRUE(txn->Commit().ok());
    EXPECT_GT(env.FileContents(seg1).size(), kWalSegmentHeaderSize);
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(env.FileContents(seg1).size(), kWalSegmentHeaderSize);
  }
  env.CrashToDurable();  // checkpoint made the data file itself durable
  auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(ReadAll(&*table).size(), 50u);
}

TEST(DatabaseTxnTest, DurabilityOffReplaysLeftoverWalOnOpen) {
  test::FaultInjectionEnv env;
  {
    auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = OpenOrCreateKv(db.get());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(table->Insert({11, "from-wal"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  env.CrashToDurable();
  DatabaseOptions off;
  off.env = env.env();  // durability defaults to kOff
  auto db = std::move(Database::Open(kDbPath, off)).value();
  EXPECT_FALSE(db->durable());
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(ReadAll(&*table).count(11), 1u);
  // The consumed WAL is gone: a later durable open must not replay it.
  auto exists =
      env.env().file_exists(WalSegmentPath(std::string(kDbPath) + "-wal", 1));
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST(DatabaseTxnTest, LegacyDatabaseUpgradesToDurable) {
  test::FaultInjectionEnv env;
  {
    DatabaseOptions off;
    off.env = env.env();
    auto db = std::move(Database::Open(kDbPath, off)).value();
    auto txn = db->Begin();  // inert
    ASSERT_TRUE(txn.ok());
    auto table = OpenOrCreateKv(db.get());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(table->Insert({5, "legacy"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  auto db = std::move(Database::Open(kDbPath, DurableOptions(&env))).value();
  EXPECT_TRUE(db->durable());
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(ReadAll(&*table).count(5), 1u);
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(table->Insert({6, "durable"}).ok());
  ASSERT_TRUE(txn->Commit().ok());
}

TEST(DatabaseTxnTest, HugeTxnSpillsPastPoolAndRecovers) {
  test::FaultInjectionEnv env;
  // 8-frame pool, one transaction touching ~100 fresh pages: the pool
  // must spill new-in-txn pages (logging their images first) instead
  // of failing, and the commit must still be atomic.
  {
    auto db = std::move(
                  Database::Open(kDbPath, DurableOptions(&env, /*pool=*/8)))
                  .value();
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = OpenOrCreateKv(db.get());
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(table->Insert({i, std::string(1500, 'p')}).ok())
          << "row " << i;
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  env.CrashToDurable();
  auto db =
      std::move(Database::Open(kDbPath, DurableOptions(&env, 8))).value();
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  auto rows = ReadAll(&*table);
  ASSERT_EQ(rows.size(), 300u);
  EXPECT_EQ(rows[299], std::string(1500, 'p'));
}

// ---------------------------------------------------------------------------
// Session-level crash-point suites
// ---------------------------------------------------------------------------

/// Deterministic fixtures.
struct Gold {
  PhyloTree alpha;
  std::map<std::string, std::string> alpha_seqs;
  PhyloTree beta;
};

Gold MakeGold(uint32_t alpha_leaves, uint32_t beta_leaves) {
  Gold g;
  Rng rng(0xC0FFEE);
  YuleOptions a;
  a.n_leaves = alpha_leaves;
  g.alpha = std::move(SimulateYule(a, &rng)).value();
  SeqEvolveOptions seq_opts;
  seq_opts.seq_length = 120;
  auto evolver = SequenceEvolver::Create(seq_opts);
  g.alpha_seqs = std::move(evolver->EvolveLeaves(g.alpha, &rng)).value();
  YuleOptions b;
  b.n_leaves = beta_leaves;
  b.leaf_prefix = "B";
  g.beta = std::move(SimulateYule(b, &rng)).value();
  return g;
}

enum class Phase2 { kStoreTreeRows, kStoreTreeBulk, kExperiment };
enum class CrashPolicy { kKeepAllWrites, kDropUnsynced };

CrimsonOptions SessionOptions(test::FaultInjectionEnv* env, Phase2 variant) {
  CrimsonOptions opts;
  opts.db_path = kDbPath;
  opts.storage_env = env->env();
  opts.durability = Durability::kCommit;
  opts.buffer_pool_pages = 64;  // small pool: bulk ingest must spill
  opts.seed = 7;
  opts.batch_workers = 1;
  opts.bulk_load_threshold =
      variant == Phase2::kStoreTreeBulk ? 0 : SIZE_MAX;
  return opts;
}

ExperimentSpec SmallSpec() {
  ExperimentSpec spec;
  spec.algorithms = {"nj"};
  SelectionSpec sel;
  sel.kind = SelectionSpec::Kind::kUniform;
  sel.k = 8;
  spec.selections = {sel};
  spec.replicates = 1;
  spec.compute_triplets = false;
  return spec;
}

Status RunPhase2(Crimson* session, Phase2 variant, const Gold& gold) {
  switch (variant) {
    case Phase2::kStoreTreeRows:
    case Phase2::kStoreTreeBulk:
      return session->LoadTree("beta", gold.beta).status();
    case Phase2::kExperiment: {
      auto ref = session->OpenTree("alpha");
      CRIMSON_RETURN_IF_ERROR(ref.status());
      return session->RunExperiment(*ref, SmallSpec()).status();
    }
  }
  return Status::Internal("unreachable");
}

/// Renders one tree's answers to all six query kinds. Tickets align
/// across sessions because every verification session is freshly
/// opened and issues the identical query sequence.
void FingerprintTree(Crimson* session, const std::string& name,
                     std::ostringstream* out) {
  auto ref = session->OpenTree(name);
  ASSERT_TRUE(ref.ok()) << ref.status();
  auto tree = session->GetTree(*ref);
  ASSERT_TRUE(tree.ok());
  std::vector<std::string> leaves;
  for (NodeId n : (*tree)->Leaves()) leaves.emplace_back((*tree)->name(n));
  ASSERT_GE(leaves.size(), 6u);
  std::vector<QueryRequest> requests = {
      LcaQuery{leaves.front(), leaves.back()},
      ProjectQuery{{leaves[0], leaves[1], leaves[2], leaves[3]}},
      SampleUniformQuery{5},
      SampleTimeQuery{4, 0.5},
      CladeQuery{{leaves[1], leaves[3], leaves[5]}},
      PatternQuery{"(" + leaves[0] + "," + leaves[2] + ");", false},
  };
  *out << "tree " << name << "\n";
  for (const QueryRequest& request : requests) {
    auto result = session->Execute(*ref, request);
    ASSERT_TRUE(result.ok()) << result.status();
    *out << RenderResult(*result) << "\n";
  }
}

/// Logical fingerprint of the whole database: tree metadata, all six
/// query kinds per tree, and every persisted experiment row (scores,
/// not timings).
std::string DbFingerprint(test::FaultInjectionEnv* env, Phase2 variant) {
  std::ostringstream out;
  auto session = Crimson::Open(SessionOptions(env, variant));
  EXPECT_TRUE(session.ok()) << session.status();
  if (!session.ok()) return "<open failed>";
  auto trees = (*session)->ListTrees();
  EXPECT_TRUE(trees.ok());
  std::set<std::string> names;
  for (const TreeInfo& info : *trees) {
    out << "meta " << info.name << " nodes=" << info.n_nodes
        << " leaves=" << info.n_leaves << " f=" << info.f << "\n";
    names.insert(info.name);
  }
  for (const std::string& name : {std::string("alpha"), std::string("beta")}) {
    if (names.count(name)) FingerprintTree(session->get(), name, &out);
  }
  // Experiment rows straight from storage (atomicity check: either the
  // whole experiment -- spec, runs, cells -- or nothing).
  auto repo = ExperimentRepository::Open((*session)->database());
  EXPECT_TRUE(repo.ok());
  auto experiments = (*repo)->ListExperiments();
  EXPECT_TRUE(experiments.ok());
  for (const auto& row : *experiments) {
    out << "experiment " << row.experiment_id << " tree=" << row.tree_name
        << " spec=" << row.spec << " seed=" << row.seed
        << " ticket=" << row.base_ticket << "\n";
    auto runs = (*repo)->RunsFor(row.experiment_id);
    EXPECT_TRUE(runs.ok());
    for (const auto& run : *runs) {
      out << "run " << run.ordinal << " " << run.algorithm
          << " sel=" << run.selection_index << " rep=" << run.replicate
          << " n=" << run.sample_size << " rf=" << run.rf_distance << "/"
          << run.rf_splits_a << "/" << run.rf_splits_b << " rfn="
          << run.rf_normalized << " trip=" << run.triplet_differing << "/"
          << run.triplet_total << "\n";
    }
    auto cells = (*repo)->CellsFor(row.experiment_id);
    EXPECT_TRUE(cells.ok());
    for (const auto& cell : *cells) {
      out << "cell " << cell.ordinal << " " << cell.algorithm
          << " sel=" << cell.selection_index << " reps=" << cell.replicates
          << " rf=" << cell.mean_rf_normalized << "/"
          << cell.min_rf_normalized << "/" << cell.max_rf_normalized << "\n";
    }
  }
  return out.str();
}

/// Loads the phase-1 state (tree alpha + sequences) and closes cleanly.
void RunPhase1(test::FaultInjectionEnv* env, Phase2 variant,
               const Gold& gold) {
  auto session = Crimson::Open(SessionOptions(env, variant));
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->LoadTree("alpha", gold.alpha).ok());
  ASSERT_TRUE((*session)->AppendSpeciesData("alpha", gold.alpha_seqs).ok());
}

/// Crashes the phase-2 workload at every injected fault point, reopens,
/// and requires the recovered database to fingerprint as either the
/// pre- or the post-commit state.
void RunCrashPointSuite(Phase2 variant, CrashPolicy policy, bool torn,
                        uint32_t alpha_leaves, uint32_t beta_leaves,
                        uint64_t fault_step = 1) {
  const Gold gold = MakeGold(alpha_leaves, beta_leaves);

  // Baselines from uncrashed runs.
  std::string pre_print;
  std::string post_print;
  {
    test::FaultInjectionEnv env;
    RunPhase1(&env, variant, gold);
    pre_print = DbFingerprint(&env, variant);
  }
  {
    test::FaultInjectionEnv env;
    RunPhase1(&env, variant, gold);
    {
      auto session = Crimson::Open(SessionOptions(&env, variant));
      ASSERT_TRUE(session.ok());
      ASSERT_TRUE(RunPhase2(session->get(), variant, gold).ok());
    }
    post_print = DbFingerprint(&env, variant);
  }
  ASSERT_NE(pre_print, post_print);

  uint64_t pre_hits = 0;
  uint64_t post_hits = 0;
  bool completed_without_fault = false;
  for (uint64_t fault = 1; !completed_without_fault; fault += fault_step) {
    ASSERT_LT(fault, 100000u) << "crash loop failed to terminate";
    test::FaultInjectionEnv env;
    RunPhase1(&env, variant, gold);
    env.ResetOpCount();
    env.ArmFailPoint(fault, torn);
    {
      auto session = Crimson::Open(SessionOptions(&env, variant));
      if (session.ok()) {
        // The workload may fail (crash point hit) or succeed (fault
        // point beyond the workload); both are valid outcomes.
        RunPhase2(session->get(), variant, gold).ok();
      }
    }
    completed_without_fault = !env.triggered();
    env.Disarm();
    if (policy == CrashPolicy::kDropUnsynced) env.CrashToDurable();

    std::string print = DbFingerprint(&env, variant);
    if (print == pre_print) {
      ++pre_hits;
    } else if (print == post_print) {
      ++post_hits;
    } else {
      FAIL() << "fault point " << fault
             << " recovered to a state that is neither pre- nor "
                "post-commit:\n"
             << print;
    }
    if (completed_without_fault) {
      EXPECT_EQ(print, post_print)
          << "fault-free run must land in the post state";
    }
  }
  // Sanity: the sweep saw both sides of the commit point.
  EXPECT_GT(pre_hits, 0u);
  EXPECT_GT(post_hits, 0u);
}

TEST(RecoveryCrashPoints, StoreTreePerRowKeepAllWrites) {
  RunCrashPointSuite(Phase2::kStoreTreeRows, CrashPolicy::kKeepAllWrites,
                     /*torn=*/false, /*alpha=*/12, /*beta=*/20);
}

TEST(RecoveryCrashPoints, StoreTreePerRowDropUnsynced) {
  RunCrashPointSuite(Phase2::kStoreTreeRows, CrashPolicy::kDropUnsynced,
                     /*torn=*/false, /*alpha=*/12, /*beta=*/20);
}

TEST(RecoveryCrashPoints, BulkLoadKeepAllWrites) {
  RunCrashPointSuite(Phase2::kStoreTreeBulk, CrashPolicy::kKeepAllWrites,
                     /*torn=*/false, /*alpha=*/12, /*beta=*/24);
}

TEST(RecoveryCrashPoints, BulkLoadDropUnsynced) {
  RunCrashPointSuite(Phase2::kStoreTreeBulk, CrashPolicy::kDropUnsynced,
                     /*torn=*/false, /*alpha=*/12, /*beta=*/24);
}

TEST(RecoveryCrashPoints, ExperimentPersistence) {
  RunCrashPointSuite(Phase2::kExperiment, CrashPolicy::kDropUnsynced,
                     /*torn=*/false, /*alpha=*/12, /*beta=*/8);
}

TEST(RecoveryCrashPoints, TornWrites) {
  RunCrashPointSuite(Phase2::kStoreTreeRows, CrashPolicy::kKeepAllWrites,
                     /*torn=*/true, /*alpha=*/12, /*beta=*/20);
}

// Stress variants: bigger trees (bulk ingest spans many spilled
// pages), a 2x2 experiment grid, every policy.
TEST(RecoveryCrashPointsStress, StoreTreePerRowStress) {
  RunCrashPointSuite(Phase2::kStoreTreeRows, CrashPolicy::kDropUnsynced,
                     /*torn=*/false, /*alpha=*/24, /*beta=*/120,
                     /*fault_step=*/3);
}

TEST(RecoveryCrashPointsStress, BulkLoadStress) {
  RunCrashPointSuite(Phase2::kStoreTreeBulk, CrashPolicy::kDropUnsynced,
                     /*torn=*/false, /*alpha=*/24, /*beta=*/400,
                     /*fault_step=*/5);
}

TEST(RecoveryCrashPointsStress, BulkLoadTornStress) {
  RunCrashPointSuite(Phase2::kStoreTreeBulk, CrashPolicy::kKeepAllWrites,
                     /*torn=*/true, /*alpha=*/24, /*beta=*/200,
                     /*fault_step=*/4);
}

TEST(RecoveryCrashPointsStress, ExperimentStress) {
  RunCrashPointSuite(Phase2::kExperiment, CrashPolicy::kDropUnsynced,
                     /*torn=*/false, /*alpha=*/32, /*beta=*/8,
                     /*fault_step=*/2);
}

}  // namespace
}  // namespace crimson
