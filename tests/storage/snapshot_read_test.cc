// MVCC snapshot-read tests: ReadTxn must observe the committed state
// as of its BeginRead -- byte-for-byte -- while a concurrent write
// transaction mutates pages in place.
//
// Covers: snapshots pinned before and during a transaction, snapshots
// held across a commit, version chains spanning several epochs, abort
// semantics (WAL rollback drops captures; durability-off "abort"
// commits visibility-wise), ReadTxn handle hygiene (self-move, double
// End, cross-thread End), crash points through an active snapshot
// (recovery must never see an uncommitted page version), and the
// side-table counters.

#include "storage/database.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "fault_injection.h"

namespace crimson {
namespace {

Schema KvSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"payload", ColumnType::kString}});
}

std::string Payload(int64_t id) {
  return StrFormat("payload-%lld", static_cast<long long>(id));
}

/// Creates the kv table and commits rows [0, n).
void SeedRows(Database* db, int64_t n) {
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(db->CreateTable("kv", KvSchema(),
                              {{"kv_by_id", "id", /*unique=*/true}})
                  .ok());
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  for (int64_t id = 0; id < n; ++id) {
    ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
  }
  ASSERT_TRUE(txn->Commit().ok());
}

/// Commits rows [from, to) into the existing kv table.
void CommitRows(Database* db, int64_t from, int64_t to) {
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  for (int64_t id = from; id < to; ++id) {
    ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
  }
  ASSERT_TRUE(txn->Commit().ok());
}

/// Scans kv and checks it holds exactly rows [0, expect) with intact
/// payloads. Runs on the calling thread (which is what makes it
/// snapshot-sensitive).
void ExpectRows(Database* db, int64_t expect) {
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  int64_t count = 0;
  int64_t max_id = -1;
  Status s = table->Scan([&](const RecordId&, const Row& row) {
    int64_t id = std::get<int64_t>(row[0]);
    EXPECT_EQ(std::get<std::string>(row[1]), Payload(id));
    if (id > max_id) max_id = id;
    ++count;
    return true;
  });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(count, expect);
  if (expect > 0) EXPECT_EQ(max_id, expect - 1);
}

/// Runs posted closures on one dedicated thread. Snapshot resolution
/// is thread-local, so a reader's BeginRead and every scan under it
/// must share a thread while the test's main thread plays the writer.
class ReaderThread {
 public:
  ReaderThread() : thread_([this] { Loop(); }) {}
  ~ReaderThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Runs fn on the reader thread; returns once it finished.
  void Run(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = std::move(fn);
      busy_ = true;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !busy_; });
  }

 private:
  void Loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || task_ != nullptr; });
        if (task_ == nullptr) return;  // stop requested, queue drained
        task = std::move(task_);
        task_ = nullptr;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        busy_ = false;
      }
      cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::function<void()> task_;
  bool busy_ = false;
  bool stop_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Snapshot visibility
// ---------------------------------------------------------------------------

TEST(SnapshotReadTest, ReaderIgnoresUncommittedWriterAndNeverBlocks) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 100);

  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  auto table = db->OpenTable("kv");
  ASSERT_TRUE(table.ok());
  for (int64_t id = 100; id < 200; ++id) {
    ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
  }

  // With the write transaction still open, a reader thread registers a
  // snapshot and scans: it must complete (pre-MVCC this blocked on the
  // writer epoch) and must see only the 100 committed rows.
  ReaderThread reader;
  reader.Run([&] {
    Database::ReadTxn read = db->BeginRead();
    ExpectRows(db.get(), 100);
    read.End();
  });

  // The writer itself reads its own uncommitted rows.
  ExpectRows(db.get(), 200);

  ASSERT_TRUE(txn->Commit().ok());
  reader.Run([&] {
    Database::ReadTxn read = db->BeginRead();
    ExpectRows(db.get(), 200);
  });
}

TEST(SnapshotReadTest, SnapshotPinnedAcrossCommitUntilEnded) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 100);

  ReaderThread reader;
  Database::ReadTxn read;
  reader.Run([&] {
    read = db->BeginRead();
    ExpectRows(db.get(), 100);
  });

  CommitRows(db.get(), 100, 200);

  // The still-open snapshot predates the commit, so the same reader
  // thread keeps seeing the old state...
  reader.Run([&] { ExpectRows(db.get(), 100); });
  // ...until it releases the snapshot and takes a fresh one.
  reader.Run([&] {
    read.End();
    Database::ReadTxn fresh = db->BeginRead();
    ExpectRows(db.get(), 200);
  });
}

TEST(SnapshotReadTest, VersionChainsServeSnapshotsAcrossSeveralEpochs) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 80);

  ReaderThread r0;
  ReaderThread r1;
  Database::ReadTxn read0;
  Database::ReadTxn read1;

  r0.Run([&] { read0 = db->BeginRead(); });   // pinned at 80 rows
  CommitRows(db.get(), 80, 160);
  r1.Run([&] { read1 = db->BeginRead(); });   // pinned at 160 rows

  // A third transaction mutates the same pages again and stays open.
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  {
    auto table = db->OpenTable("kv");
    ASSERT_TRUE(table.ok());
    for (int64_t id = 160; id < 240; ++id) {
      ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
    }
  }

  // Every snapshot resolves to its own epoch's bytes.
  r0.Run([&] { ExpectRows(db.get(), 80); });
  r1.Run([&] { ExpectRows(db.get(), 160); });
  ASSERT_TRUE(txn->Commit().ok());
  r0.Run([&] { ExpectRows(db.get(), 80); });
  r1.Run([&] { ExpectRows(db.get(), 160); });
  r0.Run([&] {
    read0.End();
    Database::ReadTxn fresh = db->BeginRead();
    ExpectRows(db.get(), 240);
  });
  r1.Run([&] { read1.End(); });

  // All snapshots gone and the epoch sealed: the side table drains.
  EXPECT_EQ(db->page_version_stats().live_versions, 0u);
}

TEST(SnapshotReadTest, StatsCountCapturesAndVersionHits) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 100);

  ReaderThread reader;
  Database::ReadTxn read;
  reader.Run([&] { read = db->BeginRead(); });

  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  {
    auto table = db->OpenTable("kv");
    ASSERT_TRUE(table.ok());
    for (int64_t id = 100; id < 150; ++id) {
      ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
    }
  }
  PageVersions::Stats mid = db->page_version_stats();
  EXPECT_GT(mid.captured_pages, 0u);
  EXPECT_GT(mid.live_versions, 0u);
  EXPECT_EQ(mid.active_snapshots, 1u);

  reader.Run([&] { ExpectRows(db.get(), 100); });
  PageVersions::Stats after_read = db->page_version_stats();
  EXPECT_GT(after_read.version_hits, 0u);

  ASSERT_TRUE(txn->Commit().ok());
  reader.Run([&] { read.End(); });
  PageVersions::Stats final_stats = db->page_version_stats();
  EXPECT_EQ(final_stats.live_versions, 0u);
  EXPECT_EQ(final_stats.active_snapshots, 0u);
  EXPECT_GT(final_stats.versions_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Abort semantics
// ---------------------------------------------------------------------------

TEST(SnapshotReadTest, WalAbortDropsCapturedVersionsAndRestoresState) {
  constexpr const char* kPath = "/tmp/crimson_snapshot_abort.db";
  test::FaultInjectionEnv env;
  DatabaseOptions opts;
  opts.durability = Durability::kCommit;
  opts.env = env.env();
  auto db = std::move(Database::Open(kPath, opts)).value();
  SeedRows(db.get(), 100);

  ReaderThread reader;
  Database::ReadTxn read;
  reader.Run([&] { read = db->BeginRead(); });

  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db->OpenTable("kv");
    ASSERT_TRUE(table.ok());
    for (int64_t id = 100; id < 180; ++id) {
      ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
    }
    txn->Abort();
  }

  // Rollback restored the frames; both the pinned snapshot and a fresh
  // one see the pre-transaction rows, and the abort dropped its
  // captures instead of leaking them.
  reader.Run([&] { ExpectRows(db.get(), 100); });
  reader.Run([&] {
    read.End();
    Database::ReadTxn fresh = db->BeginRead();
    ExpectRows(db.get(), 100);
  });
  EXPECT_EQ(db->page_version_stats().live_versions, 0u);
}

TEST(SnapshotReadTest, DurabilityOffAbortCommitsVisibilityWise) {
  // Without a WAL there is no rollback: Abort keeps the mutations (the
  // legacy contract). Visibility must agree -- the epoch advances so
  // new readers see the rows, while a snapshot from before the
  // transaction keeps the old state.
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 50);

  ReaderThread reader;
  Database::ReadTxn read;
  reader.Run([&] { read = db->BeginRead(); });

  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto table = db->OpenTable("kv");
    ASSERT_TRUE(table.ok());
    for (int64_t id = 50; id < 100; ++id) {
      ASSERT_TRUE(table->Insert({id, Payload(id)}).ok());
    }
    txn->Abort();
  }

  reader.Run([&] { ExpectRows(db.get(), 50); });
  reader.Run([&] {
    read.End();
    Database::ReadTxn fresh = db->BeginRead();
    ExpectRows(db.get(), 100);
  });
}

// ---------------------------------------------------------------------------
// ReadTxn handle hygiene
// ---------------------------------------------------------------------------

TEST(SnapshotReadTest, ReadTxnSelfMoveDoubleEndAndMoveTransfer) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 10);

  Database::ReadTxn read = db->BeginRead();
  EXPECT_TRUE(read.active());

  // Self-move-assignment is a no-op (via a reference so the compiler
  // does not flag the aliasing).
  Database::ReadTxn& alias = read;
  read = std::move(alias);
  EXPECT_TRUE(read.active());
  EXPECT_EQ(db->page_version_stats().active_snapshots, 1u);

  // Move transfers the registration instead of duplicating it.
  Database::ReadTxn moved = std::move(read);
  EXPECT_FALSE(read.active());
  EXPECT_TRUE(moved.active());
  EXPECT_EQ(db->page_version_stats().active_snapshots, 1u);

  // End is idempotent; a second End (and the destructor after it) must
  // not unregister someone else's token.
  moved.End();
  moved.End();
  EXPECT_FALSE(moved.active());
  EXPECT_EQ(db->page_version_stats().active_snapshots, 0u);

  // Move-assigning over a live handle releases the overwritten one.
  Database::ReadTxn a = db->BeginRead();
  Database::ReadTxn b = db->BeginRead();
  EXPECT_EQ(db->page_version_stats().active_snapshots, 2u);
  a = std::move(b);
  EXPECT_EQ(db->page_version_stats().active_snapshots, 1u);
  a.End();
  EXPECT_EQ(db->page_version_stats().active_snapshots, 0u);
}

TEST(SnapshotReadTest, EndFromAnotherThreadReleasesTheSnapshot) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), 20);

  ReaderThread reader;
  Database::ReadTxn read;
  reader.Run([&] {
    read = db->BeginRead();
    ExpectRows(db.get(), 20);
  });

  // Destruction/End on a different thread than BeginRead is allowed:
  // the registration is dropped immediately (GC proceeds), and the
  // origin thread's stale stack slot is purged on its next read.
  read.End();
  EXPECT_EQ(db->page_version_stats().active_snapshots, 0u);

  CommitRows(db.get(), 20, 40);
  reader.Run([&] {
    Database::ReadTxn fresh = db->BeginRead();
    ExpectRows(db.get(), 40);
  });
}

// ---------------------------------------------------------------------------
// Crash points through an active snapshot
// ---------------------------------------------------------------------------

/// One crash-point iteration: commit 60 rows + checkpoint, pin a
/// snapshot, start a transaction of 60 more rows, arm the fail point,
/// try to commit, crash to durable state, reopen, and verify the
/// recovered database holds either exactly the pre-crash rows or the
/// full post-commit rows -- never a page-version or torn hybrid.
/// Returns the ops the failed run performed (to size the sweep).
uint64_t RunCrashPoint(uint64_t fail_at) {
  SCOPED_TRACE(StrFormat("fail_at=%llu", (unsigned long long)fail_at));
  constexpr const char* kPath = "/tmp/crimson_snapshot_crash.db";
  test::FaultInjectionEnv env;
  DatabaseOptions opts;
  opts.durability = Durability::kCommit;
  opts.env = env.env();

  bool committed = false;
  {
    auto db = std::move(Database::Open(kPath, opts)).value();
    SeedRows(db.get(), 60);
    EXPECT_TRUE(db->Checkpoint().ok());

    ReaderThread reader;
    Database::ReadTxn read;
    reader.Run([&] { read = db->BeginRead(); });

    env.ResetOpCount();
    if (fail_at > 0) env.ArmFailPoint(fail_at, /*torn=*/true);

    auto txn = db->Begin();
    EXPECT_TRUE(txn.ok());
    Status s = Status::OK();
    {
      auto table = db->OpenTable("kv");
      EXPECT_TRUE(table.ok());
      for (int64_t id = 60; id < 120 && s.ok(); ++id) {
        s = table->Insert({id, Payload(id)}).status();
      }
    }
    if (s.ok()) s = txn->Commit();
    committed = s.ok();

    // Whatever happened to the writer, the pinned snapshot stays
    // byte-identical to the pre-transaction state.
    reader.Run([&] {
      SCOPED_TRACE("pinned snapshot after commit attempt");
      ExpectRows(db.get(), 60);
    });
    reader.Run([&] { read.End(); });
    env.Disarm();
  }

  env.CrashToDurable();
  uint64_t ops = env.ops_performed();

  auto db = std::move(Database::Open(kPath, opts)).value();
  // Recovery replays only the committed WAL prefix. Uncommitted page
  // versions live purely in memory, so the reopened database holds
  // exactly one of the two consistent states -- never a torn hybrid.
  // A commit reported as successful must be durable. A commit reported
  // as *failed* may still recover as committed when the fault struck
  // after the WAL sync point (late-durable commit): the log record was
  // already on disk, only a post-commit step failed.
  {
    Database::ReadTxn read = db->BeginRead();
    auto table = db->OpenTable("kv");
    EXPECT_TRUE(table.ok());
    int64_t count = 0;
    EXPECT_TRUE(table
                    ->Scan([&](const RecordId&, const Row&) {
                      ++count;
                      return true;
                    })
                    .ok());
    if (committed) {
      EXPECT_EQ(count, 120);
    } else {
      EXPECT_TRUE(count == 60 || count == 120)
          << "recovered a hybrid state: " << count << " rows";
    }
    ExpectRows(db.get(), count);
  }
  return ops;
}

TEST(SnapshotReadTest, CrashPointSweepRecoversCommittedStateOnly) {
  // Unfaulted run first, to learn how many ops the protocol performs.
  uint64_t total_ops = RunCrashPoint(0);
  ASSERT_GT(total_ops, 4u);
  // Sweep a spread of crash points across the transaction + commit
  // window (every point would be O(n^2) test time; a stride covers
  // every phase of the protocol).
  uint64_t stride = total_ops / 16 + 1;
  for (uint64_t fail_at = 1; fail_at <= total_ops + 1; fail_at += stride) {
    RunCrashPoint(fail_at);
  }
}

TEST(SnapshotReadTest, StressCrashPointSweepEveryOp) {
  uint64_t total_ops = RunCrashPoint(0);
  ASSERT_GT(total_ops, 4u);
  for (uint64_t fail_at = 1; fail_at <= total_ops + 1; ++fail_at) {
    RunCrashPoint(fail_at);
  }
}

// ---------------------------------------------------------------------------
// Many readers vs a bulk writer (TSan-friendly stress shape)
// ---------------------------------------------------------------------------

/// Readers continuously snapshot + scan while the writer commits
/// batches; every scan must land exactly on a committed boundary it
/// pinned, never mid-batch.
void RunSnapshotStress(int batches, int batch_size, int reader_threads,
                       int reader_rounds) {
  auto db = std::move(Database::OpenInMemory()).value();
  SeedRows(db.get(), batch_size);

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(reader_threads);
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&] {
      int64_t last_seen = 0;
      for (int round = 0; round < reader_rounds; ++round) {
        Database::ReadTxn read = db->BeginRead();
        auto table = db->OpenTable("kv");
        if (!table.ok()) {
          ++failures;
          return;
        }
        int64_t count = 0;
        int64_t max_id = -1;
        Status s = table->Scan([&](const RecordId&, const Row& row) {
          int64_t id = std::get<int64_t>(row[0]);
          if (std::get<std::string>(row[1]) != Payload(id)) ++failures;
          if (id > max_id) max_id = id;
          ++count;
          return true;
        });
        read.End();
        if (!s.ok()) ++failures;
        if (count % batch_size != 0) ++failures;
        if (count > 0 && max_id != count - 1) ++failures;
        if (count < last_seen) ++failures;
        last_seen = count;
      }
    });
  }

  for (int b = 1; b <= batches; ++b) {
    CommitRows(db.get(), static_cast<int64_t>(b) * batch_size,
               static_cast<int64_t>(b + 1) * batch_size);
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db->page_version_stats().live_versions, 0u);
}

TEST(SnapshotReadTest, ReadersAlwaysLandOnCommittedBoundaries) {
  RunSnapshotStress(/*batches=*/20, /*batch_size=*/11, /*reader_threads=*/4,
                    /*reader_rounds=*/40);
}

TEST(SnapshotReadTest, StressReadersAlwaysLandOnCommittedBoundaries) {
  RunSnapshotStress(/*batches=*/80, /*batch_size=*/17, /*reader_threads=*/8,
                    /*reader_rounds=*/120);
}

}  // namespace
}  // namespace crimson
