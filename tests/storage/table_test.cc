#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace crimson {
namespace {

Schema SpeciesSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"name", ColumnType::kString},
                 {"weight", ColumnType::kDouble},
                 {"seq", ColumnType::kBytes}});
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema s = SpeciesSchema();
  std::string buf;
  s.EncodeTo(&buf);
  Slice in(buf);
  auto decoded = Schema::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(*decoded == s);
  EXPECT_TRUE(in.empty());
}

TEST(SchemaTest, FindColumn) {
  Schema s = SpeciesSchema();
  EXPECT_EQ(s.FindColumn("name"), 1);
  EXPECT_EQ(s.FindColumn("seq"), 3);
  EXPECT_EQ(s.FindColumn("nope"), -1);
}

TEST(RowCodecTest, RoundTrip) {
  Schema s = SpeciesSchema();
  Row row = {int64_t{-12345}, std::string("Bha"), 2.25,
             std::string("ACGT")};
  std::string buf;
  ASSERT_TRUE(EncodeRow(s, row, &buf).ok());
  Row out;
  ASSERT_TRUE(DecodeRow(s, Slice(buf), &out).ok());
  EXPECT_EQ(std::get<int64_t>(out[0]), -12345);
  EXPECT_EQ(std::get<std::string>(out[1]), "Bha");
  EXPECT_DOUBLE_EQ(std::get<double>(out[2]), 2.25);
  EXPECT_EQ(std::get<std::string>(out[3]), "ACGT");
}

TEST(RowCodecTest, ArityAndTypeMismatchRejected) {
  Schema s = SpeciesSchema();
  std::string buf;
  EXPECT_TRUE(EncodeRow(s, {int64_t{1}}, &buf).IsInvalidArgument());
  Row wrong_type = {std::string("x"), std::string("Bha"), 2.25,
                    std::string("A")};
  EXPECT_TRUE(EncodeRow(s, wrong_type, &buf).IsInvalidArgument());
}

TEST(RowCodecTest, TrailingBytesDetected) {
  Schema s({{"a", ColumnType::kInt64}});
  std::string buf;
  ASSERT_TRUE(EncodeRow(s, {int64_t{1}}, &buf).ok());
  buf += "junk";
  Row out;
  EXPECT_TRUE(DecodeRow(s, Slice(buf), &out).IsCorruption());
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::OpenInMemory();
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto t = db_->CreateTable(
        "species", SpeciesSchema(),
        {{"by_id", "id", /*unique=*/true}, {"by_name", "name", false},
         {"by_weight", "weight", false}});
    ASSERT_TRUE(t.ok()) << t.status();
    table_ = std::make_unique<Table>(std::move(t).value());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertGetRoundTrip) {
  auto rid = table_->Insert({int64_t{1}, std::string("Bha"), 2.25,
                             std::string("ACGT")});
  ASSERT_TRUE(rid.ok());
  Row row;
  ASSERT_TRUE(table_->Get(*rid, &row).ok());
  EXPECT_EQ(std::get<std::string>(row[1]), "Bha");
}

TEST_F(TableTest, UniqueIndexViolationLeavesTableClean) {
  ASSERT_TRUE(
      table_->Insert({int64_t{1}, std::string("A"), 0.0, std::string("")})
          .ok());
  auto dup =
      table_->Insert({int64_t{1}, std::string("B"), 0.0, std::string("")});
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_EQ(table_->row_count(), 1u);
  // The non-unique name index must not have picked up the failed row.
  auto hits = table_->IndexLookup("by_name", std::string("B"));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(TableTest, IndexLookupFindsAllDuplicates) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table_
                    ->Insert({int64_t{i}, std::string("same"),
                              static_cast<double>(i), std::string("")})
                    .ok());
  }
  auto hits = table_->IndexLookup("by_name", std::string("same"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);
}

TEST_F(TableTest, IndexRangeScanOverDoubles) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table_
                    ->Insert({int64_t{i}, std::string("s"),
                              static_cast<double>(i) * 0.5, std::string("")})
                    .ok());
  }
  std::string lo, hi;
  ASSERT_TRUE(table_->EncodeKeyFor("by_weight", 10.0, &lo).ok());
  ASSERT_TRUE(table_->EncodeKeyFor("by_weight", 20.0, &hi).ok());
  int count = 0;
  ASSERT_TRUE(table_
                  ->IndexRangeScan("by_weight", lo, hi,
                                   [&](const Slice&, RecordId) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 20);  // weights 10.0, 10.5, ..., 19.5
}

TEST_F(TableTest, DeleteRemovesIndexEntries) {
  auto rid = table_->Insert({int64_t{7}, std::string("doomed"), 1.0,
                             std::string("")});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(table_->Delete(*rid).ok());
  auto hits = table_->IndexLookup("by_name", std::string("doomed"));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  // The unique id becomes available again.
  EXPECT_TRUE(
      table_->Insert({int64_t{7}, std::string("again"), 1.0, std::string("")})
          .ok());
}

TEST_F(TableTest, ScanSeesEveryRow) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table_
                    ->Insert({int64_t{i}, std::string("n"), 0.0,
                              std::string("")})
                    .ok());
  }
  int64_t sum = 0;
  ASSERT_TRUE(table_
                  ->Scan([&](const RecordId&, const Row& row) {
                    sum += std::get<int64_t>(row[0]);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(sum, 49 * 50 / 2);
}

TEST_F(TableTest, UnknownIndexRejected) {
  EXPECT_TRUE(
      table_->IndexLookup("no_such", std::string("x")).status().IsNotFound());
}

TEST(DatabaseTest, CatalogListsAndReopens) {
  std::string path = testing::TempDir() + "/crimson_db_test.db";
  RemoveFile(path);
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    Schema s({{"k", ColumnType::kString}, {"v", ColumnType::kInt64}});
    auto t = (*db)->CreateTable("kv", s, {{"by_k", "k", true}});
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Insert({std::string("alpha"), int64_t{1}}).ok());
    ASSERT_TRUE(t->Insert({std::string("beta"), int64_t{2}}).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Database::Open(path);
    ASSERT_TRUE(db.ok());
    auto names = (*db)->ListTables();
    ASSERT_TRUE(names.ok());
    ASSERT_EQ(names->size(), 1u);
    EXPECT_EQ((*names)[0], "kv");
    auto t = (*db)->OpenTable("kv");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->row_count(), 2u);
    auto hits = t->IndexLookup("by_k", std::string("beta"));
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), 1u);
    Row row;
    ASSERT_TRUE(t->Get((*hits)[0], &row).ok());
    EXPECT_EQ(std::get<int64_t>(row[1]), 2);
  }
  RemoveFile(path);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db.ok());
  Schema s({{"a", ColumnType::kInt64}});
  ASSERT_TRUE((*db)->CreateTable("t", s).ok());
  EXPECT_TRUE((*db)->CreateTable("t", s).status().IsAlreadyExists());
  EXPECT_TRUE(*(*db)->HasTable("t"));
  EXPECT_FALSE(*(*db)->HasTable("u"));
  EXPECT_TRUE((*db)->OpenTable("u").status().IsNotFound());
}

TEST(DatabaseTest, IndexOnUnknownColumnRejected) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db.ok());
  Schema s({{"a", ColumnType::kInt64}});
  auto t = (*db)->CreateTable("t", s, {{"bad", "missing", false}});
  EXPECT_TRUE(t.status().IsInvalidArgument());
}

}  // namespace
}  // namespace crimson
