// Unit tests for the write-ahead log: record framing + CRC, torn-tail
// and corruption handling in the scanner, rotation across segments,
// rewind (abort), reset generations, and group-commit concurrency.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fault_injection.h"
#include "storage/recovery.h"

namespace crimson {
namespace {

std::string PageImage(char fill) { return std::string(kPageSize, fill); }

TEST(Crc32Test, MatchesKnownVectors) {
  // IEEE CRC32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

class WalTest : public ::testing::Test {
 protected:
  test::FaultInjectionEnv env_;
  static constexpr const char* kBase = "db-wal";

  std::unique_ptr<Wal> OpenWal(uint64_t segment_bytes = 1 << 20) {
    WalOptions opts;
    opts.segment_bytes = segment_bytes;
    auto r = Wal::Open(kBase, env_.env(), opts);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  }
};

TEST_F(WalTest, AppendScanRoundTrip) {
  auto wal = OpenWal();
  std::string img = PageImage('x');
  ASSERT_TRUE(wal->AppendPageImage(7, img.data()).ok());
  ASSERT_TRUE(wal->AppendHeaderImage(9, 3, 2).ok());
  auto commit = wal->AppendCommit(42);
  ASSERT_TRUE(commit.ok());
  ASSERT_TRUE(wal->Sync(*commit, /*group=*/false).ok());

  WalScanSummary summary;
  auto records = ReadWalRecords(kBase, env_.env(), &summary);
  ASSERT_TRUE(records.ok()) << records.status();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_TRUE(summary.wal_found);
  EXPECT_EQ(summary.commits, 1u);
  EXPECT_EQ(summary.last_commit_lsn, 3u);
  EXPECT_EQ((*records)[0].type, WalRecordType::kPageImage);
  EXPECT_EQ((*records)[0].page, 7u);
  EXPECT_EQ((*records)[0].image, img);
  EXPECT_EQ((*records)[1].type, WalRecordType::kHeaderImage);
  EXPECT_EQ((*records)[1].page_count, 9u);
  EXPECT_EQ((*records)[1].freelist_head, 3u);
  EXPECT_EQ((*records)[1].catalog_root, 2u);
  EXPECT_EQ((*records)[2].type, WalRecordType::kCommit);
  EXPECT_EQ((*records)[2].txn_id, 42u);
}

TEST_F(WalTest, UncommittedTailIsDiscardedByScan) {
  auto wal = OpenWal();
  std::string img = PageImage('a');
  ASSERT_TRUE(wal->AppendPageImage(1, img.data()).ok());
  auto c1 = wal->AppendCommit(1);
  ASSERT_TRUE(c1.ok());
  // Txn 2 never commits.
  ASSERT_TRUE(wal->AppendPageImage(2, img.data()).ok());
  ASSERT_TRUE(wal->Flush().ok());
  ASSERT_TRUE(wal->Sync(wal->appended_lsn(), false).ok());

  WalScanSummary summary;
  auto records = ReadWalRecords(kBase, env_.env(), &summary);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(summary.records, 3u);
  EXPECT_EQ(summary.last_commit_lsn, 2u);
  EXPECT_EQ(summary.tail_records_discarded, 1u);
}

TEST_F(WalTest, TornRecordStopsScanAtLastValidPrefix) {
  auto wal = OpenWal();
  std::string img = PageImage('b');
  ASSERT_TRUE(wal->AppendPageImage(1, img.data()).ok());
  auto c1 = wal->AppendCommit(1);
  ASSERT_TRUE(wal->Sync(*c1, false).ok());
  ASSERT_TRUE(wal->AppendPageImage(2, img.data()).ok());
  auto c2 = wal->AppendCommit(2);
  ASSERT_TRUE(wal->Sync(*c2, false).ok());
  wal.reset();

  // Tear the last record: chop bytes off the segment's end.
  std::string seg = WalSegmentPath(kBase, 1);
  std::string bytes = env_.FileContents(seg);
  ASSERT_GT(bytes.size(), 10u);
  {
    auto f = env_.env().open_file(seg);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Truncate(bytes.size() - 10).ok());
  }
  WalScanSummary summary;
  ASSERT_TRUE(ReadWalRecords(kBase, env_.env(), &summary).ok());
  // The torn commit (and the page image before it, which precedes a
  // commit that never became valid) drop off; txn 1 survives.
  EXPECT_EQ(summary.last_commit_lsn, 2u);
  EXPECT_EQ(summary.records, 3u);
}

TEST_F(WalTest, CorruptMiddleRecordStopsScan) {
  auto wal = OpenWal();
  std::string img = PageImage('c');
  ASSERT_TRUE(wal->AppendPageImage(1, img.data()).ok());
  auto c1 = wal->AppendCommit(1);
  ASSERT_TRUE(wal->Sync(*c1, false).ok());
  ASSERT_TRUE(wal->AppendPageImage(2, img.data()).ok());
  auto c2 = wal->AppendCommit(2);
  ASSERT_TRUE(wal->Sync(*c2, false).ok());
  wal.reset();

  // Flip one byte inside the third record's payload.
  std::string seg = WalSegmentPath(kBase, 1);
  std::string bytes = env_.FileContents(seg);
  size_t victim = kWalSegmentHeaderSize + 2 * kWalRecordHeaderSize +
                  (9 + 4 + kPageSize) + (9 + 8) + kWalRecordHeaderSize + 20;
  ASSERT_LT(victim, bytes.size());
  char flipped = bytes[victim] ^ 0x5A;
  {
    auto f = env_.env().open_file(seg);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(victim, &flipped, 1).ok());
  }
  WalScanSummary summary;
  ASSERT_TRUE(ReadWalRecords(kBase, env_.env(), &summary).ok());
  // Everything from the corrupt record on is untrusted.
  EXPECT_EQ(summary.records, 2u);
  EXPECT_EQ(summary.last_commit_lsn, 2u);
}

TEST_F(WalTest, RotationChainsSegments) {
  // Tiny segments force several rotations.
  auto wal = OpenWal(/*segment_bytes=*/2 * kPageSize);
  std::string img = PageImage('r');
  for (uint64_t t = 1; t <= 8; ++t) {
    ASSERT_TRUE(wal->AppendPageImage(static_cast<PageId>(t), img.data()).ok());
    auto c = wal->AppendCommit(t);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(wal->Sync(*c, false).ok());
  }
  auto exists = env_.env().file_exists(WalSegmentPath(kBase, 2));
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists) << "expected at least two segments";

  WalScanSummary summary;
  ASSERT_TRUE(ReadWalRecords(kBase, env_.env(), &summary).ok());
  EXPECT_EQ(summary.records, 16u);
  EXPECT_EQ(summary.commits, 8u);
  EXPECT_EQ(summary.last_commit_lsn, 16u);
}

TEST_F(WalTest, RewindDropsAbortedTail) {
  auto wal = OpenWal();
  std::string img = PageImage('d');
  ASSERT_TRUE(wal->AppendPageImage(1, img.data()).ok());
  auto c1 = wal->AppendCommit(1);
  ASSERT_TRUE(wal->Sync(*c1, false).ok());

  Wal::Mark mark = wal->mark();
  ASSERT_TRUE(wal->AppendPageImage(2, img.data()).ok());
  ASSERT_TRUE(wal->AppendPageImage(3, img.data()).ok());
  ASSERT_TRUE(wal->Rewind(mark).ok());
  EXPECT_EQ(wal->appended_lsn(), 2u);

  // The next transaction reuses the rewound space cleanly.
  ASSERT_TRUE(wal->AppendPageImage(4, img.data()).ok());
  auto c2 = wal->AppendCommit(2);
  ASSERT_TRUE(wal->Sync(*c2, false).ok());

  WalScanSummary summary;
  auto records = ReadWalRecords(kBase, env_.env(), &summary);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(summary.records, 4u);
  EXPECT_EQ((*records)[2].page, 4u);
  EXPECT_EQ(summary.commits, 2u);
}

TEST_F(WalTest, ResetStartsFreshGenerationAndIgnoresStaleSegments) {
  auto wal = OpenWal(/*segment_bytes=*/2 * kPageSize);
  std::string img = PageImage('e');
  for (uint64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(wal->AppendPageImage(static_cast<PageId>(t), img.data()).ok());
    auto c = wal->AppendCommit(t);
    ASSERT_TRUE(wal->Sync(*c, false).ok());
  }
  uint64_t gen_before = wal->generation();
  // Simulate a crash mid-truncation: keep a stale copy of segment 2,
  // reset, then put the stale segment back.
  std::string stale = env_.FileContents(WalSegmentPath(kBase, 2));
  ASSERT_FALSE(stale.empty());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->generation(), gen_before + 1);
  {
    auto f = env_.env().open_file(WalSegmentPath(kBase, 2));
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(0, stale.data(), stale.size()).ok());
  }
  // New-era records in segment 1; stale old-generation segment 2 must
  // not chain.
  ASSERT_TRUE(wal->AppendPageImage(9, img.data()).ok());
  auto c = wal->AppendCommit(9);
  ASSERT_TRUE(wal->Sync(*c, false).ok());

  WalScanSummary summary;
  auto records = ReadWalRecords(kBase, env_.env(), &summary);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(summary.generation, gen_before + 1);
  EXPECT_EQ(summary.records, 2u);
  EXPECT_EQ((*records)[0].page, 9u);
}

TEST_F(WalTest, GroupCommitManyThreadsAllDurable) {
  auto wal = OpenWal();
  constexpr int kThreads = 8;
  constexpr int kCommitsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        auto lsn = wal->AppendCommit(static_cast<uint64_t>(t) * 1000 + i);
        if (!lsn.ok() || !wal->Sync(*lsn, /*group=*/true).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wal->durable_lsn(), wal->appended_lsn());

  WalScanSummary summary;
  ASSERT_TRUE(ReadWalRecords(kBase, env_.env(), &summary).ok());
  EXPECT_EQ(summary.commits,
            static_cast<uint64_t>(kThreads) * kCommitsPerThread);
  EXPECT_EQ(summary.last_commit_lsn, summary.records);
}

TEST_F(WalTest, SyncFailureIsSticky) {
  auto wal = OpenWal();
  std::string img = PageImage('f');
  ASSERT_TRUE(wal->AppendPageImage(1, img.data()).ok());
  auto c = wal->AppendCommit(1);
  ASSERT_TRUE(c.ok());
  env_.ArmFailPoint(env_.ops_performed() + 1);
  EXPECT_FALSE(wal->Sync(*c, false).ok());
  env_.Disarm();
  // The log refuses further work rather than risking a hole.
  EXPECT_FALSE(wal->AppendCommit(2).ok());
}

}  // namespace
}  // namespace crimson
