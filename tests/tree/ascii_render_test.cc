#include "tree/ascii_render.h"

#include <gtest/gtest.h>

#include "tree/tree_builders.h"

namespace crimson {
namespace {

TEST(AsciiRenderTest, EmptyAndSingle) {
  PhyloTree empty;
  EXPECT_EQ(RenderAscii(empty), "(empty tree)\n");
  PhyloTree one;
  one.AddRoot("solo");
  EXPECT_EQ(RenderAscii(one), "solo\n");
}

TEST(AsciiRenderTest, Figure1Golden) {
  PhyloTree t = MakePaperFigure1Tree();
  AsciiRenderOptions opts;
  opts.precision = 4;
  std::string art = RenderAscii(t, opts);
  EXPECT_EQ(art,
            "root\n"
            "├── Syn:2.5\n"
            "├── ?:0.75\n"
            "│   ├── ?:0.5\n"
            "│   │   ├── Lla:1\n"
            "│   │   └── Spy:1\n"
            "│   └── Bha:1.5\n"
            "└── Bsu:1.25\n");
}

TEST(AsciiRenderTest, LengthsCanBeHidden) {
  PhyloTree t;
  NodeId r = t.AddRoot("r");
  t.AddChild(r, "A", 1.0);
  t.AddChild(r, "B", 2.0);
  AsciiRenderOptions opts;
  opts.show_edge_lengths = false;
  EXPECT_EQ(RenderAscii(t, opts), "r\n├── A\n└── B\n");
}

TEST(AsciiRenderTest, HugeTreeRefused) {
  PhyloTree t = MakeBalancedBinary(10);  // 2047 nodes
  AsciiRenderOptions opts;
  opts.max_nodes = 512;
  std::string art = RenderAscii(t, opts);
  EXPECT_NE(art.find("exceeds"), std::string::npos);
  opts.max_nodes = 0;  // unlimited renders fine
  art = RenderAscii(t, opts);
  EXPECT_GT(art.size(), 2047u);
}

TEST(AsciiRenderTest, EveryNodeAppearsOnItsOwnLine) {
  Rng rng(91);
  PhyloTree t = MakeRandomBinary(50, &rng);
  AsciiRenderOptions opts;
  opts.max_nodes = 0;
  std::string art = RenderAscii(t, opts);
  size_t lines = 0;
  for (char c : art) lines += c == '\n';
  EXPECT_EQ(lines, t.size());
}

}  // namespace
}  // namespace crimson
