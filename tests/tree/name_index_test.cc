// NameIndex differential tests: every lookup must agree byte-for-byte
// with the linear-scan oracles it replaced (PhyloTree::FindByName and a
// keep-first leaf map), including the awkward cases -- duplicate names,
// internal/leaf name collisions, empty names, missing names. *Stress*
// variants run many randomized trees with small name pools so
// collisions are dense.

#include "tree/name_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/tree_sim.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

/// Oracle for FindLeaf: first leaf in node (= arena) order per name.
std::map<std::string, NodeId> KeepFirstLeafMap(const PhyloTree& t) {
  std::map<std::string, NodeId> out;
  for (NodeId n = 0; n < t.size(); ++n) {
    if (!t.is_leaf(n) || t.name(n).empty()) continue;
    out.emplace(std::string(t.name(n)), n);  // keeps the first
  }
  return out;
}

/// All distinct names in the tree plus a few guaranteed misses.
std::vector<std::string> ProbeNames(const PhyloTree& t) {
  std::set<std::string> names;
  for (NodeId n = 0; n < t.size(); ++n) {
    names.insert(std::string(t.name(n)));
  }
  std::vector<std::string> out(names.begin(), names.end());
  out.push_back("definitely-not-a-taxon");
  out.push_back("Taxon_miss");
  out.push_back("");
  return out;
}

void ExpectOracleParity(const PhyloTree& t) {
  NameIndex index = NameIndex::Build(t);
  std::map<std::string, NodeId> leaf_oracle = KeepFirstLeafMap(t);
  for (const std::string& name : ProbeNames(t)) {
    EXPECT_EQ(index.Find(t, name), t.FindByName(name)) << "'" << name << "'";
    auto it = leaf_oracle.find(name);
    NodeId want = it == leaf_oracle.end() ? kNoNode : it->second;
    if (!name.empty()) {
      EXPECT_EQ(index.FindLeaf(t, name), want) << "'" << name << "'";
    }
  }
}

TEST(NameIndex, FindMatchesFindByNameOnFigure1) {
  PhyloTree t = MakePaperFigure1Tree();
  ExpectOracleParity(t);
  NameIndex index = NameIndex::Build(t);
  EXPECT_EQ(index.Find(t, "Nope"), kNoNode);
  EXPECT_FALSE(index.has_duplicate_leaf_names());
  EXPECT_FALSE(index.has_unnamed_leaf());
}

TEST(NameIndex, FirstOccurrenceSemanticsUnderDuplicates) {
  // dup appears as an internal node (first), then two leaves.
  PhyloTree t;
  t.AddRoot("root");
  NodeId inner = t.AddChild(0, "dup", 1.0);        // node 1, internal
  NodeId leaf_a = t.AddChild(inner, "dup", 1.0);   // node 2, first leaf
  NodeId leaf_b = t.AddChild(0, "dup", 1.0);       // node 3, second leaf
  t.AddChild(0, "solo", 1.0);
  NameIndex index = NameIndex::Build(t);

  // Find == FindByName: the first *node* bearing the name.
  EXPECT_EQ(index.Find(t, "dup"), inner);
  EXPECT_EQ(t.FindByName("dup"), inner);
  // FindLeaf: the first *leaf*, skipping the internal occurrence.
  EXPECT_EQ(index.FindLeaf(t, "dup"), leaf_a);
  EXPECT_NE(index.FindLeaf(t, "dup"), leaf_b);

  EXPECT_TRUE(index.has_duplicate_leaf_names());
  EXPECT_EQ(index.DuplicateLeafNames(t),
            std::vector<std::string>{"dup"});
}

TEST(NameIndex, InternalOnlyNameIsNotALeafMatch) {
  PhyloTree t;
  t.AddRoot("root");
  NodeId clade = t.AddChild(0, "Clade9", 1.0);
  t.AddChild(clade, "A", 1.0);
  t.AddChild(clade, "B", 1.0);
  NameIndex index = NameIndex::Build(t);
  EXPECT_EQ(index.Find(t, "Clade9"), clade);
  EXPECT_EQ(index.FindLeaf(t, "Clade9"), kNoNode);
  EXPECT_FALSE(index.has_duplicate_leaf_names());
}

TEST(NameIndex, EmptyNamesFallBackToLinearScanSemantics) {
  PhyloTree t;
  t.AddRoot("");  // unnamed root
  t.AddChild(0, "A", 1.0);
  NodeId unnamed_leaf = t.AddChild(0, "", 1.0);
  NameIndex index = NameIndex::Build(t);
  // FindByName("") returns the first node with an empty name (the
  // root); the index must preserve that exactly.
  EXPECT_EQ(index.Find(t, ""), t.FindByName(""));
  EXPECT_EQ(index.Find(t, ""), 0u);
  EXPECT_TRUE(index.has_unnamed_leaf());
  EXPECT_EQ(unnamed_leaf, 2u);
}

TEST(NameIndex, SortedLeafNamesMatchesManualScan) {
  Rng rng(0x1EAF);
  BirthDeathOptions bd;
  bd.n_leaves = 200;
  auto t = SimulateBirthDeath(bd, &rng);
  ASSERT_TRUE(t.ok());
  t->set_name(t->Leaves()[3], "");  // one unnamed leaf
  NameIndex index = NameIndex::Build(*t);

  std::set<std::string> manual;
  for (NodeId leaf : t->Leaves()) {
    if (!t->name(leaf).empty()) manual.insert(std::string(t->name(leaf)));
  }
  std::vector<std::string> want(manual.begin(), manual.end());
  EXPECT_EQ(index.SortedLeafNames(*t), want);
  EXPECT_TRUE(index.has_unnamed_leaf());
}

TEST(NameIndex, DistinctNamesCountsUniqueNonEmpty) {
  PhyloTree t;
  t.AddRoot("");
  t.AddChild(0, "A", 1.0);
  t.AddChild(0, "A", 1.0);
  t.AddChild(0, "B", 1.0);
  NameIndex index = NameIndex::Build(t);
  EXPECT_EQ(index.distinct_names(), 2u);
}

TEST(NameIndex, SurvivesTreeMove) {
  // The index stores offsets, not pointers into a specific tree object:
  // lookups against the moved-to tree must keep working.
  PhyloTree t = MakePaperFigure1Tree();
  NameIndex index = NameIndex::Build(t);
  PhyloTree moved = std::move(t);
  EXPECT_EQ(index.Find(moved, "Lla"), moved.FindByName("Lla"));
  EXPECT_EQ(index.FindLeaf(moved, "Bsu"), moved.FindByName("Bsu"));
}

void RunRandomizedParity(int n_trees, uint32_t max_leaves, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n_trees; ++i) {
    YuleOptions yule;
    yule.n_leaves = 2 + static_cast<uint32_t>(rng.Uniform(max_leaves));
    auto t = SimulateYule(yule, &rng);
    ASSERT_TRUE(t.ok());
    // Rename leaves from a small pool so duplicates are common; leave
    // some leaves unnamed and some internals named.
    std::vector<NodeId> leaves = t->Leaves();
    for (NodeId leaf : leaves) {
      switch (rng.Uniform(6)) {
        case 0:
          t->set_name(leaf, "");
          break;
        case 1:
          t->set_name(leaf, "shared");
          break;
        default:
          t->set_name(leaf,
                      "pool_" + std::to_string(rng.Uniform(max_leaves / 2)));
      }
    }
    for (NodeId n = 0; n < t->size(); ++n) {
      if (!t->is_leaf(n) && rng.OneIn(4)) {
        t->set_name(n, "pool_" + std::to_string(rng.Uniform(max_leaves / 2)));
      }
    }
    ExpectOracleParity(*t);

    // Duplicate reporting parity: names on >1 leaf, sorted unique.
    NameIndex index = NameIndex::Build(*t);
    std::map<std::string, int> leaf_counts;
    for (NodeId leaf : t->Leaves()) {
      if (!t->name(leaf).empty()) {
        ++leaf_counts[std::string(t->name(leaf))];
      }
    }
    std::vector<std::string> want_dups;
    for (const auto& [name, count] : leaf_counts) {
      if (count > 1) want_dups.push_back(name);
    }
    EXPECT_EQ(index.DuplicateLeafNames(*t), want_dups);
    EXPECT_EQ(index.has_duplicate_leaf_names(), !want_dups.empty());
  }
}

TEST(NameIndex, RandomizedOracleParity) {
  RunRandomizedParity(/*n_trees=*/10, /*max_leaves=*/120, 0xAB5);
}

TEST(NameIndex, RandomizedOracleParityStress) {
  RunRandomizedParity(/*n_trees=*/30, /*max_leaves=*/1500, 0xAB50);
}

}  // namespace
}  // namespace crimson
