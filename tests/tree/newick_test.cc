#include "tree/newick.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/tree_sim.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

TEST(NewickParseTest, SimpleTree) {
  auto t = ParseNewick("(A:1,B:2):0;");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->size(), 3u);
  EXPECT_EQ(t->LeafCount(), 2u);
  NodeId a = t->FindByName("A");
  ASSERT_NE(a, kNoNode);
  EXPECT_DOUBLE_EQ(t->edge_length(a), 1.0);
  EXPECT_DOUBLE_EQ(t->edge_length(t->FindByName("B")), 2.0);
}

TEST(NewickParseTest, NestedWithInternalLabels) {
  auto t = ParseNewick("((A:1,B:1)AB:0.5,C:2)Root;");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->size(), 5u);
  EXPECT_EQ(t->name(t->root()), "Root");
  NodeId ab = t->FindByName("AB");
  ASSERT_NE(ab, kNoNode);
  EXPECT_FALSE(t->is_leaf(ab));
  EXPECT_DOUBLE_EQ(t->edge_length(ab), 0.5);
}

TEST(NewickParseTest, SingleLeafTree) {
  auto t = ParseNewick("OnlyOne:3.5;");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->size(), 1u);
  EXPECT_EQ(t->name(t->root()), "OnlyOne");
}

TEST(NewickParseTest, QuotedLabels) {
  auto t = ParseNewick("('Homo sapiens':1,'it''s':2);");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_NE(t->FindByName("Homo sapiens"), kNoNode);
  EXPECT_NE(t->FindByName("it's"), kNoNode);
}

TEST(NewickParseTest, CommentsAndWhitespaceSkipped) {
  auto t = ParseNewick("  ( [comment] A : 1 , \n B:2 ) [&R] ; ");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->LeafCount(), 2u);
}

TEST(NewickParseTest, ScientificNotationLengths) {
  auto t = ParseNewick("(A:1e-3,B:2.5E2);");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_DOUBLE_EQ(t->edge_length(t->FindByName("A")), 1e-3);
  EXPECT_DOUBLE_EQ(t->edge_length(t->FindByName("B")), 250.0);
}

TEST(NewickParseTest, MultifurcationsAllowed) {
  auto t = ParseNewick("(A,B,C,D,E);");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->OutDegree(t->root()), 5);
}

class NewickErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NewickErrorTest, MalformedInputRejected) {
  auto t = ParseNewick(GetParam());
  EXPECT_FALSE(t.ok()) << "input: " << GetParam();
  EXPECT_TRUE(t.status().IsInvalidArgument()) << t.status();
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, NewickErrorTest,
    ::testing::Values("", ";", "(A,B;", "(A,B));", "A,B;", "(A:xyz);",
                      "(A,B)", "(A,B);junk", "((A,B)", "(A,'unterminated);",
                      "(A:1:2);"));

TEST(NewickWriteTest, RoundTripPreservesTree) {
  PhyloTree original = MakePaperFigure1Tree();
  std::string text = WriteNewick(original);
  auto reparsed = ParseNewick(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << " text: " << text;
  EXPECT_TRUE(PhyloTree::Equal(original, *reparsed, 1e-9, /*ordered=*/true));
}

TEST(NewickWriteTest, QuotesSpecialLabels) {
  PhyloTree t;
  NodeId r = t.AddRoot("");
  t.AddChild(r, "has space", 1.0);
  t.AddChild(r, "has'quote", 2.0);
  std::string text = WriteNewick(t);
  auto reparsed = ParseNewick(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_NE(reparsed->FindByName("has space"), kNoNode);
  EXPECT_NE(reparsed->FindByName("has'quote"), kNoNode);
}

TEST(NewickWriteTest, OptionsControlOutput) {
  PhyloTree t;
  NodeId r = t.AddRoot("R");
  t.AddChild(r, "A", 1.5);
  NewickWriteOptions opts;
  opts.include_edge_lengths = false;
  EXPECT_EQ(WriteNewick(t, opts), "(A)R;");
  opts.include_edge_lengths = true;
  opts.include_internal_names = false;
  EXPECT_EQ(WriteNewick(t, opts), "(A:1.5);");
}

TEST(NewickWriteTest, EmptyTree) {
  PhyloTree t;
  EXPECT_EQ(WriteNewick(t), ";");
}

TEST(NewickRoundTripTest, DeepTreeIsIterativelySafe) {
  // Depth 100k: recursion in parse or write would crash here.
  PhyloTree deep = MakeCaterpillar(100000);
  std::string text = WriteNewick(deep);
  auto reparsed = ParseNewick(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), deep.size());
  EXPECT_EQ(reparsed->MaxDepth(), 100000u);
}

TEST(NewickRoundTripTest, RandomTreesSurviveRoundTrip) {
  Rng rng(17);
  for (int rep = 0; rep < 10; ++rep) {
    PhyloTree t = MakeRandomBinary(200, &rng);
    auto reparsed = ParseNewick(WriteNewick(t));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(PhyloTree::Equal(t, *reparsed, 1e-6, /*ordered=*/true));
  }
}

// ---------------------------------------------------------------------------
// Randomized simulate -> serialize -> reparse round trips, including
// labels that force quoting and escaping.
// ---------------------------------------------------------------------------

/// Renames a fraction of nodes to labels containing Newick
/// metacharacters (spaces, quotes, parens, commas, colons, brackets,
/// semicolons) that the writer must quote/escape.
void InjectAwkwardLabels(PhyloTree* t, Rng* rng) {
  static const char* kAwkward[] = {
      "Homo sapiens",   "it's",          "a,b",        "(paren)",
      "colon:label",    "semi;label",    "[bracketed]", "tab\tname",
      "quote''double",  " leading",      "trailing ",   "'wrapped'",
  };
  for (NodeId n = 0; n < t->size(); ++n) {
    if (rng->OneIn(4)) {
      std::string label(kAwkward[rng->Uniform(sizeof(kAwkward) /
                                              sizeof(kAwkward[0]))]);
      // Unique suffix keeps FindByName-based assertions unambiguous.
      t->set_name(n, label + "#" + std::to_string(n));
    }
  }
}

void CheckSimulatedRoundTrip(uint32_t n_leaves, uint64_t seed,
                             bool birth_death) {
  Rng rng(seed);
  PhyloTree t;
  if (birth_death) {
    BirthDeathOptions opts;
    opts.n_leaves = n_leaves;
    opts.death_rate = 0.4;
    auto sim = SimulateBirthDeath(opts, &rng);
    ASSERT_TRUE(sim.ok());
    t = std::move(*sim);
  } else {
    YuleOptions opts;
    opts.n_leaves = n_leaves;
    auto sim = SimulateYule(opts, &rng);
    ASSERT_TRUE(sim.ok());
    t = std::move(*sim);
  }
  InjectAwkwardLabels(&t, &rng);
  std::string text = WriteNewick(t);
  auto reparsed = ParseNewick(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // Topology + branch-length isomorphism (writer precision bounds eps).
  EXPECT_TRUE(PhyloTree::Equal(t, *reparsed, 1e-6, /*ordered=*/true));
}

TEST(NewickRoundTripTest, SimulatedTreesWithQuotedLabelsRoundTrip) {
  for (int rep = 0; rep < 6; ++rep) {
    CheckSimulatedRoundTrip(100 + 40 * rep, 0x4E3 + rep, rep % 2 == 1);
  }
}

TEST(NewickRoundTripStressTest, LargeSimulatedTreesRoundTrip) {
  // Dialed-up version: ctest -C stress -L stress.
  Rng rng(0x57E);
  for (int rep = 0; rep < 8; ++rep) {
    CheckSimulatedRoundTrip(
        2000 + static_cast<uint32_t>(rng.Uniform(4000)), rng.Next(),
        rep % 2 == 1);
  }
}

}  // namespace
}  // namespace crimson
