#include "tree/nexus.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

constexpr char kSampleNexus[] = R"(#NEXUS
BEGIN TAXA;
  DIMENSIONS NTAX=4;
  TAXLABELS Bha Lla Spy Syn;
END;

BEGIN DATA;
  DIMENSIONS NTAX=4 NCHAR=8;
  FORMAT DATATYPE=DNA MISSING=? GAP=-;
  MATRIX
    Bha ACGTACGT
    Lla ACGTACGA
    Spy ACGTACCA
    Syn TTGTACCA
  ;
END;

BEGIN TREES;
  TREE sample = [&R] ((Bha:1.5,(Lla:1,Spy:1):0.5):0.75,Syn:2.5);
END;
)";

TEST(NexusParseTest, FullDocument) {
  auto doc = ParseNexus(kSampleNexus);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->taxa.size(), 4u);
  EXPECT_EQ(doc->taxa[0], "Bha");
  EXPECT_EQ(doc->datatype, "DNA");
  ASSERT_EQ(doc->sequences.size(), 4u);
  EXPECT_EQ(doc->sequences.at("Bha"), "ACGTACGT");
  ASSERT_EQ(doc->trees.size(), 1u);
  EXPECT_EQ(doc->trees[0].name, "sample");
  EXPECT_EQ(doc->trees[0].tree.LeafCount(), 4u);
  EXPECT_NE(doc->trees[0].tree.FindByName("Syn"), kNoNode);
}

TEST(NexusParseTest, TranslateTableApplied) {
  const char* text = R"(#NEXUS
BEGIN TREES;
  TRANSLATE 1 Bha, 2 Lla, 3 Syn;
  TREE t = ((1:1,2:1):1,3:2);
END;
)";
  auto doc = ParseNexus(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->trees.size(), 1u);
  EXPECT_NE(doc->trees[0].tree.FindByName("Bha"), kNoNode);
  EXPECT_NE(doc->trees[0].tree.FindByName("Lla"), kNoNode);
  EXPECT_EQ(doc->trees[0].tree.FindByName("1"), kNoNode);
}

TEST(NexusParseTest, InterleavedMatrixConcatenates) {
  const char* text = R"(#NEXUS
BEGIN DATA;
  MATRIX
    A ACGT
    B TTTT
    A GGGG
    B CCCC
  ;
END;
)";
  auto doc = ParseNexus(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->sequences.at("A"), "ACGTGGGG");
  EXPECT_EQ(doc->sequences.at("B"), "TTTTCCCC");
}

TEST(NexusParseTest, UnknownBlocksSkipped) {
  const char* text = R"(#NEXUS
BEGIN ASSUMPTIONS;
  USERTYPE mine = 4;
  OPTIONS DEFTYPE = unord;
END;
BEGIN TAXA;
  TAXLABELS X Y;
END;
)";
  auto doc = ParseNexus(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->taxa.size(), 2u);
}

TEST(NexusParseTest, QuotedTaxaAndComments) {
  const char* text = R"(#NEXUS
[file comment]
BEGIN TAXA;
  TAXLABELS 'Homo sapiens' [inline] Pan_troglodytes;
END;
)";
  auto doc = ParseNexus(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->taxa.size(), 2u);
  EXPECT_EQ(doc->taxa[0], "Homo sapiens");
  EXPECT_EQ(doc->taxa[1], "Pan_troglodytes");
}

TEST(NexusParseTest, MultipleTreesInOneBlock) {
  const char* text = R"(#NEXUS
BEGIN TREES;
  TREE one = (A:1,B:1);
  TREE two = ((A:1,B:1):1,C:1);
END;
)";
  auto doc = ParseNexus(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->trees.size(), 2u);
  EXPECT_EQ(doc->trees[0].tree.LeafCount(), 2u);
  EXPECT_EQ(doc->trees[1].tree.LeafCount(), 3u);
}

TEST(NexusParseTest, ErrorsReported) {
  EXPECT_FALSE(ParseNexus("not nexus at all").ok());
  EXPECT_FALSE(ParseNexus("#NEXUS\nBEGIN TAXA").ok());       // no ';'
  EXPECT_FALSE(ParseNexus("#NEXUS\nTAXLABELS A;").ok());     // no BEGIN
  EXPECT_FALSE(
      ParseNexus("#NEXUS\nBEGIN TREES;\nTREE t (A,B);\nEND;\n").ok());
  EXPECT_FALSE(
      ParseNexus("#NEXUS\nBEGIN TREES;\nTREE t = (A,,B);\nEND;\n").ok());
}

TEST(NexusWriteTest, RoundTrip) {
  NexusDocument doc;
  doc.taxa = {"Bha", "Lla", "Syn"};
  doc.sequences["Bha"] = "ACGT";
  doc.sequences["Lla"] = "ACGA";
  doc.sequences["Syn"] = "TTTT";
  NexusTree nt;
  nt.name = "gold";
  nt.tree = *ParseNewick("((Bha:1,Lla:1):1,Syn:2);");
  doc.trees.push_back(std::move(nt));

  std::string text = WriteNexus(doc);
  auto reparsed = ParseNexus(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_EQ(reparsed->taxa, doc.taxa);
  EXPECT_EQ(reparsed->sequences, doc.sequences);
  ASSERT_EQ(reparsed->trees.size(), 1u);
  EXPECT_EQ(reparsed->trees[0].name, "gold");
  EXPECT_TRUE(PhyloTree::Equal(reparsed->trees[0].tree, doc.trees[0].tree,
                               1e-9, /*ordered=*/true));
}

TEST(NexusWriteTest, QuotedNamesSurviveRoundTrip) {
  NexusDocument doc;
  doc.taxa = {"Homo sapiens"};
  NexusTree nt;
  nt.name = "t";
  PhyloTree tree;
  NodeId r = tree.AddRoot("");
  tree.AddChild(r, "Homo sapiens", 1.0);
  tree.AddChild(r, "Pan", 1.0);
  nt.tree = std::move(tree);
  doc.trees.push_back(std::move(nt));
  auto reparsed = ParseNexus(WriteNexus(doc));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_NE(reparsed->trees[0].tree.FindByName("Homo sapiens"), kNoNode);
}

// ---------------------------------------------------------------------------
// Randomized simulate -> serialize -> reparse round trips with quoted
// and escaped taxon labels plus sequence data.
// ---------------------------------------------------------------------------

void CheckSimulatedNexusRoundTrip(uint32_t n_leaves, uint64_t seed) {
  Rng rng(seed);
  YuleOptions opts;
  opts.n_leaves = n_leaves;
  auto sim = SimulateYule(opts, &rng);
  ASSERT_TRUE(sim.ok());
  PhyloTree t = std::move(*sim);

  // Rename a fraction of the leaves to labels that force quoting in
  // TAXLABELS, MATRIX, and the embedded Newick.
  static const char* kAwkward[] = {"Homo sapiens", "it's", "semi;x",
                                   "paren(x)", "comma,x", "equals=x"};
  std::vector<NodeId> leaves = t.Leaves();
  for (size_t i = 0; i < leaves.size(); ++i) {
    if (rng.OneIn(3)) {
      std::string label(kAwkward[rng.Uniform(sizeof(kAwkward) /
                                             sizeof(kAwkward[0]))]);
      t.set_name(leaves[i], label + "#" + std::to_string(i));
    }
  }

  NexusDocument doc;
  const size_t nchar = 24;
  for (NodeId n : t.Leaves()) {
    doc.taxa.emplace_back(t.name(n));
    std::string seq;
    for (size_t c = 0; c < nchar; ++c) seq.push_back("ACGT"[rng.Uniform(4)]);
    doc.sequences[std::string(t.name(n))] = std::move(seq);
  }
  NexusTree nt;
  nt.name = "simulated";
  nt.tree = t;
  doc.trees.push_back(std::move(nt));

  auto reparsed = ParseNexus(WriteNexus(doc));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->taxa, doc.taxa);
  EXPECT_EQ(reparsed->sequences, doc.sequences);
  ASSERT_EQ(reparsed->trees.size(), 1u);
  EXPECT_EQ(reparsed->trees[0].name, "simulated");
  // Topology/branch-length isomorphism of the embedded tree.
  EXPECT_TRUE(PhyloTree::Equal(reparsed->trees[0].tree, t, 1e-6,
                               /*ordered=*/true));
}

TEST(NexusRoundTripTest, SimulatedDocumentsWithQuotedTaxaRoundTrip) {
  for (int rep = 0; rep < 5; ++rep) {
    CheckSimulatedNexusRoundTrip(60 + 30 * rep, 0xAE05 + rep);
  }
}

TEST(NexusRoundTripStressTest, LargeSimulatedDocumentsRoundTrip) {
  // Dialed-up version: ctest -C stress -L stress.
  Rng rng(0x57E57);
  for (int rep = 0; rep < 6; ++rep) {
    CheckSimulatedNexusRoundTrip(
        1000 + static_cast<uint32_t>(rng.Uniform(2000)), rng.Next());
  }
}

TEST(NexusParseTest, PaperFigure1AsNexusRoundTrip) {
  NexusDocument doc;
  PhyloTree fig1 = MakePaperFigure1Tree();
  for (NodeId n = 0; n < fig1.size(); ++n) {
    if (fig1.is_leaf(n)) doc.taxa.emplace_back(fig1.name(n));
  }
  NexusTree nt;
  nt.name = "fig1";
  nt.tree = fig1;
  doc.trees.push_back(std::move(nt));
  auto reparsed = ParseNexus(WriteNexus(doc));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_TRUE(PhyloTree::Equal(reparsed->trees[0].tree, fig1, 1e-9,
                               /*ordered=*/true));
}

}  // namespace
}  // namespace crimson
