// Differential tests for the packed structure-of-arrays PhyloTree:
// every observable behaviour (traversal orders, child order, names,
// serialization bytes, persistence) is checked against an independent
// reference implementation that stores children as per-node vectors --
// the shape of the pre-refactor layout. Randomized cases run over
// Yule / birth-death / random-attachment trees; *Stress* variants dial
// the sizes up and run under `ctest -C stress -L stress`.

#include "tree/phylo_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "crimson/repositories.h"
#include "labeling/layered_dewey.h"
#include "sim/tree_sim.h"
#include "tree/newick.h"
#include "tree/nexus.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation: per-node child vectors, heap-string names.
// Traversals use the textbook algorithms (explicit child lists), not the
// packed tree's sibling-chain trick, so agreement is meaningful.

struct RefTree {
  struct Node {
    std::string name;
    double edge = 0.0;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
  };
  std::vector<Node> nodes;

  NodeId AddRoot(std::string name, double edge) {
    nodes.push_back({std::move(name), edge, kNoNode, {}});
    return 0;
  }
  NodeId AddChild(NodeId parent, std::string name, double edge) {
    NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back({std::move(name), edge, parent, {}});
    nodes[parent].children.push_back(id);
    return id;
  }

  std::vector<NodeId> PreOrderFrom(NodeId start) const {
    std::vector<NodeId> out, stack = {start};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      out.push_back(n);
      const auto& ch = nodes[n].children;
      for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
    }
    return out;
  }

  std::vector<NodeId> PostOrderFrom(NodeId start) const {
    // Reverse of the preorder that pushes children in forward order.
    std::vector<NodeId> out, stack = {start};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      out.push_back(n);
      for (NodeId c : nodes[n].children) stack.push_back(c);
    }
    std::reverse(out.begin(), out.end());
    return out;
  }
};

/// Builds a random tree through both implementations with identical
/// calls: random attachment biased toward recent nodes (deep chains),
/// names drawn from a small pool including duplicates and empties.
void BuildRandomPair(uint32_t n_nodes, Rng* rng, PhyloTree* packed,
                     RefTree* ref) {
  auto pick_name = [&]() -> std::string {
    switch (rng->Uniform(5)) {
      case 0:
        return "";  // unnamed internal/leaf
      case 1:
        return "dup";  // deliberately duplicated
      default:
        return "taxon_" + std::to_string(rng->Uniform(n_nodes));
    }
  };
  packed->AddRoot("root", 0.0);
  ref->AddRoot("root", 0.0);
  for (uint32_t i = 1; i < n_nodes; ++i) {
    // Bias toward recent ids so trees get deep, not star-shaped.
    NodeId parent = rng->OneIn(3)
                        ? static_cast<NodeId>(rng->Uniform(i))
                        : static_cast<NodeId>(i - 1 - rng->Uniform(
                              std::min<uint64_t>(i, 4)));
    std::string name = pick_name();
    double edge = static_cast<double>(rng->Uniform(1000)) / 256.0;
    NodeId a = packed->AddChild(parent, name, edge);
    NodeId b = ref->AddChild(parent, std::move(name), edge);
    ASSERT_EQ(a, b);
  }
}

/// Derives the reference view of an already-built packed tree (children
/// in node order -- the documented insertion order invariant).
RefTree MirrorFromParents(const PhyloTree& t) {
  RefTree ref;
  ref.nodes.resize(t.size());
  for (NodeId n = 0; n < t.size(); ++n) {
    ref.nodes[n].name = std::string(t.name(n));
    ref.nodes[n].edge = t.edge_length(n);
    ref.nodes[n].parent = t.parent(n);
    if (n != 0) ref.nodes[t.parent(n)].children.push_back(n);
  }
  return ref;
}

std::vector<NodeId> CollectPre(const PhyloTree& t, NodeId start = 0) {
  std::vector<NodeId> out;
  t.PreOrder(
      [&](NodeId n) {
        out.push_back(n);
        return true;
      },
      start);
  return out;
}

std::vector<NodeId> CollectPost(const PhyloTree& t, NodeId start = 0) {
  std::vector<NodeId> out;
  t.PostOrder(
      [&](NodeId n) {
        out.push_back(n);
        return true;
      },
      start);
  return out;
}

void ExpectParity(const PhyloTree& packed, const RefTree& ref, Rng* rng) {
  ASSERT_EQ(packed.size(), ref.nodes.size());
  EXPECT_EQ(CollectPre(packed), ref.PreOrderFrom(0));
  EXPECT_EQ(CollectPost(packed), ref.PostOrderFrom(0));
  for (NodeId n = 0; n < packed.size(); ++n) {
    EXPECT_EQ(packed.parent(n), ref.nodes[n].parent);
    EXPECT_EQ(packed.name(n), ref.nodes[n].name);
    EXPECT_DOUBLE_EQ(packed.edge_length(n), ref.nodes[n].edge);
    EXPECT_EQ(packed.Children(n), ref.nodes[n].children);
    EXPECT_EQ(packed.OutDegree(n), ref.nodes[n].children.size());
    EXPECT_EQ(packed.is_leaf(n), ref.nodes[n].children.empty());
  }
  // Subtree traversals from a handful of random interior starts.
  for (int i = 0; i < 8; ++i) {
    NodeId start = static_cast<NodeId>(rng->Uniform(packed.size()));
    EXPECT_EQ(CollectPre(packed, start), ref.PreOrderFrom(start));
    EXPECT_EQ(CollectPost(packed, start), ref.PostOrderFrom(start));
  }
}

void RunTraversalParity(int n_trees, uint32_t max_nodes, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n_trees; ++i) {
    PhyloTree packed;
    RefTree ref;
    uint32_t n = 2 + static_cast<uint32_t>(rng.Uniform(max_nodes));
    BuildRandomPair(n, &rng, &packed, &ref);
    ASSERT_TRUE(packed.Validate().ok());
    ExpectParity(packed, ref, &rng);
    // The same tree after ShrinkToFit (accelerator dropped) and after a
    // post-shrink append (accelerator rebuilt lazily) must still agree.
    packed.ShrinkToFit();
    ExpectParity(packed, ref, &rng);
    NodeId p = static_cast<NodeId>(rng.Uniform(packed.size()));
    packed.AddChild(p, "late", 1.0);
    ref.AddChild(p, "late", 1.0);
    ExpectParity(packed, ref, &rng);
  }
}

TEST(PackedTreeDifferential, TraversalParityRandomTrees) {
  RunTraversalParity(/*n_trees=*/25, /*max_nodes=*/200, 0xD1FF);
}

TEST(PackedTreeDifferential, TraversalParityStress) {
  RunTraversalParity(/*n_trees=*/40, /*max_nodes=*/5000, 0x57E55);
}

TEST(PackedTreeDifferential, SimulatedTreesMatchReferenceTraversals) {
  Rng rng(0x51A1);
  YuleOptions yule;
  yule.n_leaves = 500;
  auto yt = SimulateYule(yule, &rng);
  ASSERT_TRUE(yt.ok());
  BirthDeathOptions bd;
  bd.n_leaves = 300;
  auto bt = SimulateBirthDeath(bd, &rng);
  ASSERT_TRUE(bt.ok());
  for (const PhyloTree* t : {&*yt, &*bt}) {
    RefTree ref = MirrorFromParents(*t);
    EXPECT_EQ(CollectPre(*t), ref.PreOrderFrom(0));
    EXPECT_EQ(CollectPost(*t), ref.PostOrderFrom(0));
    // Leaves() is preorder-ordered leaf extraction.
    std::vector<NodeId> ref_leaves;
    for (NodeId n : ref.PreOrderFrom(0)) {
      if (ref.nodes[n].children.empty()) ref_leaves.push_back(n);
    }
    EXPECT_EQ(t->Leaves(), ref_leaves);
    std::vector<uint32_t> ranks = t->PreOrderRanks();
    std::vector<NodeId> pre = ref.PreOrderFrom(0);
    for (uint32_t r = 0; r < pre.size(); ++r) EXPECT_EQ(ranks[pre[r]], r);
  }
}

TEST(PackedTreeDifferential, EarlyExitStopsTraversal) {
  PhyloTree t = MakeBalancedBinary(4);
  int pre_seen = 0;
  t.PreOrder([&](NodeId) { return ++pre_seen < 5; });
  EXPECT_EQ(pre_seen, 5);
  int post_seen = 0;
  t.PostOrder([&](NodeId) { return ++post_seen < 3; });
  EXPECT_EQ(post_seen, 3);
}

TEST(PackedTreeDifferential, VisitorsAreTemplated) {
  // The visitors must accept arbitrary callables (no std::function in
  // the signature) and OutDegree must be the packed uint32_t.
  PhyloTree t = MakePaperFigure1Tree();
  static_assert(std::is_same_v<decltype(t.OutDegree(0)), uint32_t>,
                "OutDegree must return uint32_t");
  struct Counter {
    int* n;
    bool operator()(NodeId) const {
      ++*n;
      return true;
    }
  };
  int visits = 0;
  t.PreOrder(Counter{&visits});
  EXPECT_EQ(visits, static_cast<int>(t.size()));
}

// ---------------------------------------------------------------------------
// Serialization byte-identity.

TEST(PackedTreeDifferential, NewickRoundTripByteIdentical) {
  Rng rng(0x4E3);
  YuleOptions yule;
  yule.n_leaves = 200;
  auto t = SimulateYule(yule, &rng);
  ASSERT_TRUE(t.ok());
  // Mix in names that need quoting.
  t->set_name(*t->Leaves().begin(), "needs space");
  t->set_name(t->Leaves().back(), "quote's");
  const std::string once = WriteNewick(*t);
  auto reparsed = ParseNewick(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(WriteNewick(*reparsed), once);
  EXPECT_TRUE(PhyloTree::Equal(*t, *reparsed, 1e-9, /*ordered=*/true));
}

TEST(PackedTreeDifferential, NexusRoundTripByteIdentical) {
  NexusDocument doc;
  doc.taxa = {"Bha", "Lla", "Spy", "Syn", "Bsu"};
  doc.trees.push_back({"fig1", MakePaperFigure1Tree()});
  doc.sequences["Bha"] = "ACGT";
  doc.sequences["Lla"] = "ACGA";
  const std::string once = WriteNexus(doc);
  auto reparsed = ParseNexus(once);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(WriteNexus(*reparsed), once);
}

// ---------------------------------------------------------------------------
// Packed construction, mutation, and codec paths.

TEST(PackedTree, FromPackedRoundTrip) {
  Rng rng(0xF00D);
  PhyloTree t;
  RefTree ref;
  BuildRandomPair(300, &rng, &t, &ref);
  auto rebuilt = PhyloTree::FromPacked(
      t.parents(), t.edge_lengths(), t.name_offsets(),
      std::string(t.name_arena()));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  ASSERT_TRUE(rebuilt->Validate().ok());
  EXPECT_TRUE(PhyloTree::Equal(t, *rebuilt, 1e-12, /*ordered=*/true));
  EXPECT_EQ(CollectPre(t), CollectPre(*rebuilt));
  EXPECT_EQ(rebuilt->name_arena(), t.name_arena());
}

TEST(PackedTree, FromPackedRejectsMalformedInput) {
  std::string arena("\0ok\0", 4);
  // Root with a parent.
  EXPECT_FALSE(
      PhyloTree::FromPacked({0, 0}, {0, 1}, {0, 1}, arena).ok());
  // Parent does not precede child.
  EXPECT_FALSE(
      PhyloTree::FromPacked({kNoNode, 2, 0}, {0, 1, 1}, {0, 1, 0}, arena)
          .ok());
  // Name offset out of bounds.
  EXPECT_FALSE(
      PhyloTree::FromPacked({kNoNode, 0}, {0, 1}, {0, 99}, arena).ok());
  // Arena not NUL-framed.
  EXPECT_FALSE(PhyloTree::FromPacked({kNoNode, 0}, {0, 1}, {0, 1},
                                     std::string("\0ok", 3))
                   .ok());
  // Arena byte 0 not NUL (offset 0 must be the shared empty name).
  EXPECT_FALSE(PhyloTree::FromPacked({kNoNode, 0}, {0, 1}, {0, 1},
                                     std::string("xok\0", 4))
                   .ok());
  // Well-formed input still accepted.
  EXPECT_TRUE(
      PhyloTree::FromPacked({kNoNode, 0}, {0, 1}, {0, 1}, arena).ok());
}

TEST(PackedTree, SetNameInPlaceAndGrowPaths) {
  PhyloTree t;
  t.AddRoot("root");
  NodeId a = t.AddChild(0, "alpha", 1.0);
  NodeId b = t.AddChild(0, "beta", 1.0);
  // Shorter or equal: overwritten in place, neighbours untouched.
  t.set_name(a, "al");
  EXPECT_EQ(t.name(a), "al");
  EXPECT_EQ(t.name(0), "root");
  EXPECT_EQ(t.name(b), "beta");
  // Longer: re-interned at the arena tail.
  t.set_name(a, "alphabetical");
  EXPECT_EQ(t.name(a), "alphabetical");
  EXPECT_EQ(t.name(b), "beta");
  // Clearing maps to the shared empty name at offset 0.
  t.set_name(b, "");
  EXPECT_EQ(t.name(b), "");
  EXPECT_EQ(t.name_offset(b), 0u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(PackedTree, ReserveCoversNameBytes) {
  PhyloTree t;
  t.Reserve(100, 2000);
  EXPECT_GE(t.name_arena().capacity(), 2000u);
  const char* arena_before = t.name_arena().data();
  t.AddRoot("r");
  for (int i = 0; i < 99; ++i) {
    t.AddChild(0, "leaf_number_" + std::to_string(i), 1.0);
  }
  // Under-budget build must not have reallocated the arena.
  EXPECT_EQ(t.name_arena().data(), arena_before);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(PackedTree, FootprintIsAtLeastFixedColumns) {
  PhyloTree t = MakeBalancedBinary(6);
  EXPECT_GE(t.MemoryFootprintBytes(), t.size() * 24);
}

void RunCodecRoundTrip(uint32_t n_nodes, uint64_t seed) {
  Rng rng(seed);
  PhyloTree t;
  RefTree ref;
  BuildRandomPair(n_nodes, &rng, &t, &ref);
  t.ShrinkToFit();
  std::string blob;
  EncodePackedTree(t, &blob);
  auto back = DecodePackedTree(Slice(blob));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(PhyloTree::Equal(t, *back, 1e-12, /*ordered=*/true));
  EXPECT_EQ(back->name_arena(), t.name_arena());
  for (NodeId n = 0; n < t.size(); ++n) {
    EXPECT_EQ(back->name_offset(n), t.name_offset(n));
  }
}

TEST(PackedTreeCodec, RoundTrip) { RunCodecRoundTrip(400, 0xC0DE); }

TEST(PackedTreeCodec, RoundTripStress) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    RunCodecRoundTrip(3000, 0xC0DE00 + seed);
  }
}

TEST(PackedTreeCodec, RejectsCorruptBlobs) {
  PhyloTree t = MakePaperFigure1Tree();
  std::string blob;
  EncodePackedTree(t, &blob);
  // Truncations at every boundary-ish point must fail cleanly, never
  // crash or return a malformed tree.
  for (size_t len : {size_t{0}, size_t{1}, blob.size() / 2,
                     blob.size() - 1}) {
    auto r = DecodePackedTree(Slice(blob.data(), len));
    EXPECT_FALSE(r.ok()) << "len=" << len;
  }
  // Flipping the trailing arena byte (the final NUL) breaks framing.
  std::string bad = blob;
  bad.back() = 'x';
  EXPECT_FALSE(DecodePackedTree(Slice(bad)).ok());
}

// ---------------------------------------------------------------------------
// Persistence: labels survive a store/load cycle byte-identically via
// the packed blob (no re-interning).

TEST(PackedTreePersistence, StoredLabelsReopenByteIdentical) {
  auto db = Database::OpenInMemory();
  ASSERT_TRUE(db.ok());
  auto trees = TreeRepository::Open(db->get());
  ASSERT_TRUE(trees.ok());

  Rng rng(0x5709E);
  PhyloTree t;
  RefTree ref;
  BuildRandomPair(250, &rng, &t, &ref);
  t.ShrinkToFit();
  LayeredDeweyScheme scheme(4);
  ASSERT_TRUE(scheme.Build(t).ok());
  auto id = (*trees)->StoreTree("packed", t, scheme);
  ASSERT_TRUE(id.ok()) << id.status();

  auto loaded = (*trees)->LoadTree(*id);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(PhyloTree::Equal(t, *loaded, 1e-12, /*ordered=*/true));
  // The blob fast path hands back the arena bytes exactly as stored.
  EXPECT_EQ(loaded->name_arena(), t.name_arena());
  for (NodeId n = 0; n < t.size(); ++n) {
    EXPECT_EQ(loaded->name_offset(n), t.name_offset(n));
  }
}

}  // namespace
}  // namespace crimson
