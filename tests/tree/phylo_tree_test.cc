#include "tree/phylo_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "tree/tree_builders.h"

namespace crimson {
namespace {

TEST(PhyloTreeTest, EmptyTree) {
  PhyloTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.root(), kNoNode);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.LeafCount(), 0u);
}

TEST(PhyloTreeTest, SingleNode) {
  PhyloTree t;
  NodeId r = t.AddRoot("only");
  EXPECT_EQ(r, t.root());
  EXPECT_TRUE(t.is_leaf(r));
  EXPECT_EQ(t.LeafCount(), 1u);
  EXPECT_EQ(t.MaxDepth(), 0u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(PhyloTreeTest, PaperFigure1Shape) {
  PhyloTree t = MakePaperFigure1Tree();
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.LeafCount(), 5u);
  EXPECT_EQ(t.MaxDepth(), 3u);
  ASSERT_TRUE(t.Validate().ok());
  // Root children: Syn, P, Bsu in order.
  auto kids = t.Children(t.root());
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(t.name(kids[0]), "Syn");
  EXPECT_EQ(t.name(kids[2]), "Bsu");
  EXPECT_EQ(t.OutDegree(t.root()), 3);
  // Leaf names present.
  for (const char* name : {"Bha", "Lla", "Spy", "Syn", "Bsu"}) {
    NodeId n = t.FindByName(name);
    ASSERT_NE(n, kNoNode) << name;
    EXPECT_TRUE(t.is_leaf(n));
  }
}

TEST(PhyloTreeTest, PaperFigure1Weights) {
  PhyloTree t = MakePaperFigure1Tree();
  std::vector<double> w = t.RootPathWeights();
  // The §2.2 frontier calibration: Bha=2.25, x=1.25, Syn=2.5, Bsu=1.25.
  EXPECT_DOUBLE_EQ(w[t.FindByName("Bha")], 2.25);
  EXPECT_DOUBLE_EQ(w[t.FindByName("Syn")], 2.5);
  EXPECT_DOUBLE_EQ(w[t.FindByName("Bsu")], 1.25);
  NodeId x = t.parent(t.FindByName("Lla"));
  EXPECT_DOUBLE_EQ(w[x], 1.25);
  EXPECT_DOUBLE_EQ(w[t.FindByName("Lla")], 2.25);
}

TEST(PhyloTreeTest, PreOrderVisitsParentFirstLeftToRight) {
  PhyloTree t = MakePaperFigure1Tree();
  std::vector<std::string> order;
  t.PreOrder([&](NodeId n) {
    order.emplace_back(t.name(n));
    return true;
  });
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[0], "root");
  EXPECT_EQ(order[1], "Syn");
  // P subtree: P, x, Lla, Spy, Bha, then Bsu.
  EXPECT_EQ(order[3], "");   // x
  EXPECT_EQ(order[4], "Lla");
  EXPECT_EQ(order[5], "Spy");
  EXPECT_EQ(order[6], "Bha");
  EXPECT_EQ(order[7], "Bsu");
}

TEST(PhyloTreeTest, PostOrderVisitsChildrenFirst) {
  PhyloTree t = MakePaperFigure1Tree();
  std::vector<uint32_t> rank(t.size());
  uint32_t next = 0;
  t.PostOrder([&](NodeId n) {
    rank[n] = next++;
    return true;
  });
  EXPECT_EQ(next, t.size());
  for (NodeId n = 1; n < t.size(); ++n) {
    EXPECT_LT(rank[n], rank[t.parent(n)]) << "child after parent";
  }
}

TEST(PhyloTreeTest, EarlyStopTraversals) {
  PhyloTree t = MakeBalancedBinary(4);
  int visited = 0;
  t.PreOrder([&](NodeId) { return ++visited < 5; });
  EXPECT_EQ(visited, 5);
  visited = 0;
  t.PostOrder([&](NodeId) { return ++visited < 5; });
  EXPECT_EQ(visited, 5);
}

TEST(PhyloTreeTest, SubtreeTraversalDoesNotEscape) {
  PhyloTree t = MakePaperFigure1Tree();
  NodeId p = t.parent(t.parent(t.FindByName("Lla")));  // internal P
  std::vector<std::string> names;
  t.PreOrder(
      [&](NodeId n) {
        names.emplace_back(t.name(n));
        return true;
      },
      p);
  // P's subtree: P, x, Lla, Spy, Bha -- not Syn/Bsu/root.
  EXPECT_EQ(names.size(), 5u);
  for (const std::string& n : names) {
    EXPECT_NE(n, "Syn");
    EXPECT_NE(n, "Bsu");
    EXPECT_NE(n, "root");
  }
}

TEST(PhyloTreeTest, DepthsAndRanks) {
  PhyloTree t = MakeCaterpillar(100);
  EXPECT_EQ(t.MaxDepth(), 100u);
  std::vector<uint32_t> rank = t.PreOrderRanks();
  EXPECT_EQ(rank[t.root()], 0u);
  std::set<uint32_t> uniq(rank.begin(), rank.end());
  EXPECT_EQ(uniq.size(), t.size());
}

TEST(PhyloTreeTest, DeepTreeTraversalsAreIterative) {
  // 200k levels would overflow any recursive traversal stack.
  PhyloTree t = MakeCaterpillar(200000);
  size_t count = 0;
  t.PreOrder([&](NodeId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, t.size());
  count = 0;
  t.PostOrder([&](NodeId) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, t.size());
  EXPECT_EQ(t.MaxDepth(), 200000u);
}

TEST(PhyloTreeTest, NaiveLcaMatchesKnownAnswers) {
  PhyloTree t = MakePaperFigure1Tree();
  NodeId lla = t.FindByName("Lla");
  NodeId spy = t.FindByName("Spy");
  NodeId syn = t.FindByName("Syn");
  NodeId bha = t.FindByName("Bha");
  EXPECT_EQ(t.NaiveLca(lla, spy), t.parent(lla));            // x
  EXPECT_EQ(t.NaiveLca(lla, syn), t.root());                 // paper example
  EXPECT_EQ(t.NaiveLca(lla, bha), t.parent(t.parent(lla)));  // P
  EXPECT_EQ(t.NaiveLca(lla, lla), lla);
}

TEST(PhyloTreeTest, IsAncestorOrSelf) {
  PhyloTree t = MakePaperFigure1Tree();
  NodeId lla = t.FindByName("Lla");
  EXPECT_TRUE(t.IsAncestorOrSelf(t.root(), lla));
  EXPECT_TRUE(t.IsAncestorOrSelf(lla, lla));
  EXPECT_FALSE(t.IsAncestorOrSelf(lla, t.root()));
  EXPECT_FALSE(t.IsAncestorOrSelf(t.FindByName("Syn"), lla));
}

TEST(PhyloTreeTest, EqualOrderedAndUnordered) {
  PhyloTree a = MakePaperFigure1Tree();
  PhyloTree b = MakePaperFigure1Tree();
  EXPECT_TRUE(PhyloTree::Equal(a, b, 1e-9, /*ordered=*/true));
  EXPECT_TRUE(PhyloTree::Equal(a, b, 1e-9, /*ordered=*/false));

  // Same topology, different child order: unordered-equal only.
  PhyloTree c;
  NodeId r = c.AddRoot("r");
  c.AddChild(r, "B", 2.0);
  c.AddChild(r, "A", 1.0);
  PhyloTree d;
  r = d.AddRoot("r");
  d.AddChild(r, "A", 1.0);
  d.AddChild(r, "B", 2.0);
  EXPECT_FALSE(PhyloTree::Equal(c, d, 1e-9, /*ordered=*/true));
  EXPECT_TRUE(PhyloTree::Equal(c, d, 1e-9, /*ordered=*/false));

  // Weight difference breaks equality at tight eps, passes at loose.
  PhyloTree e = d;
  e.set_edge_length(e.FindByName("A"), 1.0001);
  EXPECT_FALSE(PhyloTree::Equal(d, e, 1e-9, false));
  EXPECT_TRUE(PhyloTree::Equal(d, e, 0.01, false));
}

TEST(PhyloTreeTest, BuildersProduceExpectedShapes) {
  PhyloTree cat = MakeCaterpillar(10);
  EXPECT_EQ(cat.LeafCount(), 11u);
  EXPECT_EQ(cat.MaxDepth(), 10u);
  EXPECT_TRUE(cat.Validate().ok());

  PhyloTree bal = MakeBalancedBinary(5);
  EXPECT_EQ(bal.LeafCount(), 32u);
  EXPECT_EQ(bal.MaxDepth(), 5u);
  EXPECT_TRUE(bal.Validate().ok());

  Rng rng(3);
  PhyloTree rnd = MakeRandomBinary(500, &rng);
  EXPECT_EQ(rnd.LeafCount(), 500u);
  EXPECT_TRUE(rnd.Validate().ok());
  for (NodeId n = 0; n < rnd.size(); ++n) {
    if (!rnd.is_leaf(n)) EXPECT_EQ(rnd.OutDegree(n), 2);
  }
}

}  // namespace
}  // namespace crimson
