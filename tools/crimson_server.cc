// crimson_server: serves one Crimson session over the wire protocol.
//
//   crimson_server --db=/path/to.db [--host=127.0.0.1] [--port=9917]
//                  [--workers=8] [--max-connections=64]
//                  [--max-inflight=128] [--durability=off|commit|group]
//
// Prints one "listening on <host>:<port>" line once it is serving
// (scripts wait for it), then runs until SIGTERM/SIGINT, at which
// point it drains gracefully: stops accepting, finishes in-flight
// requests, flushes responses, checkpoints the session, and exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "crimson/crimson.h"
#include "crimson/service.h"
#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using crimson::Crimson;
  using crimson::CrimsonOptions;
  using crimson::Durability;
  using crimson::SessionService;
  using crimson::net::CrimsonServer;
  using crimson::net::ServerOptions;

  CrimsonOptions session_opts;
  ServerOptions server_opts;
  server_opts.port = 9917;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--db=", 5) == 0) {
      session_opts.db_path = argv[i] + 5;
    } else if (strncmp(argv[i], "--host=", 7) == 0) {
      server_opts.host = argv[i] + 7;
    } else if (strncmp(argv[i], "--port=", 7) == 0) {
      server_opts.port = static_cast<uint16_t>(atoi(argv[i] + 7));
    } else if (strncmp(argv[i], "--workers=", 10) == 0) {
      server_opts.max_exec_concurrency = static_cast<size_t>(
          atoi(argv[i] + 10));
      session_opts.batch_workers = server_opts.max_exec_concurrency;
    } else if (strncmp(argv[i], "--max-connections=", 18) == 0) {
      server_opts.max_connections = static_cast<size_t>(atoi(argv[i] + 18));
    } else if (strncmp(argv[i], "--max-inflight=", 15) == 0) {
      server_opts.max_inflight_queries =
          static_cast<size_t>(atoi(argv[i] + 15));
    } else if (strcmp(argv[i], "--durability=commit") == 0) {
      session_opts.durability = Durability::kCommit;
    } else if (strcmp(argv[i], "--durability=group") == 0) {
      session_opts.durability = Durability::kGroupCommit;
    } else if (strcmp(argv[i], "--durability=off") == 0) {
      session_opts.durability = Durability::kOff;
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  auto session_or = Crimson::Open(session_opts);
  if (!session_or.ok()) {
    fprintf(stderr, "failed to open session: %s\n",
            session_or.status().ToString().c_str());
    return 1;
  }
  auto session = std::move(session_or).value();
  SessionService service(session.get());

  auto server_or = CrimsonServer::Start(&service, server_opts);
  if (!server_or.ok()) {
    fprintf(stderr, "failed to start server: %s\n",
            server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_or).value();

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  printf("crimson_server listening on %s:%u (db=%s)\n",
         server_opts.host.c_str(), server->port(),
         session_opts.db_path.empty() ? "<memory>"
                                      : session_opts.db_path.c_str());
  fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  printf("signal received; draining...\n");
  fflush(stdout);
  crimson::Status drained = server->Shutdown();
  auto stats = server->stats();
  printf("drained: %llu connections served, %llu queries "
         "(%llu rejected), checkpoint %s\n",
         static_cast<unsigned long long>(stats.connections_accepted),
         static_cast<unsigned long long>(stats.queries_executed),
         static_cast<unsigned long long>(stats.queries_rejected_unavailable),
         drained.ok() ? "ok" : drained.ToString().c_str());
  // The service outlives the server, so the session's counters are
  // still live here: one line of cache + MVCC telemetry for operators
  // tailing the log.
  crimson::SessionStats session_stats = service.Stats();
  printf("cache: %llu hits / %llu misses (%llu entries, %llu bytes), "
         "%llu invalidations; crack: %llu/%llu sequences loaded across "
         "%llu stores; mvcc: epoch %llu, %llu live versions\n",
         static_cast<unsigned long long>(session_stats.cache.hits),
         static_cast<unsigned long long>(session_stats.cache.misses),
         static_cast<unsigned long long>(session_stats.cache.entries),
         static_cast<unsigned long long>(session_stats.cache.bytes_used),
         static_cast<unsigned long long>(session_stats.cache.invalidations),
         static_cast<unsigned long long>(
             session_stats.cache.crack_sequences_loaded),
         static_cast<unsigned long long>(
             session_stats.cache.crack_sequences_total),
         static_cast<unsigned long long>(session_stats.cache.crack_stores),
         static_cast<unsigned long long>(session_stats.pages.committed_epoch),
         static_cast<unsigned long long>(session_stats.pages.live_versions));
  fflush(stdout);
  return drained.ok() ? 0 : 1;
}
