// crimson_server: serves one Crimson session over the wire protocol.
//
//   crimson_server --db=/path/to.db [--host=127.0.0.1] [--port=9917]
//                  [--workers=8] [--max-connections=64]
//                  [--max-inflight=128] [--durability=off|commit|group]
//                  [--log-level=debug|info|warning|error]
//                  [--metrics-dump-secs=N] [--slow-query-micros=N]
//
// Prints one "listening on <host>:<port>" line once it is serving
// (scripts wait for it), then runs until SIGTERM/SIGINT, at which
// point it drains gracefully: stops accepting, finishes in-flight
// requests, flushes responses, checkpoints the session, and exits 0.
// With --metrics-dump-secs=N the serving loop logs one summary line of
// the session's metrics snapshot every N seconds; --slow-query-micros
// turns on the session slow-query log at that threshold.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/log.h"
#include "crimson/crimson.h"
#include "crimson/service.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

/// One log line summarizing a metrics snapshot: total queries (and
/// overall latency percentiles folded across the per-kind histograms),
/// cache and buffer-pool hit traffic, WAL appends, and the wire-level
/// counts. Operators tailing the log get the health headline; the full
/// snapshot is one `crimson_stats` call away.
std::string MetricsDumpLine(const crimson::obs::MetricsSnapshot& m) {
  uint64_t queries = 0;
  for (const auto& [key, value] : m.counters) {
    if (key.rfind("query.", 0) == 0 &&
        key.size() > 6 && key.compare(key.size() - 6, 6, ".count") == 0) {
      queries += value;
    }
  }
  // Fold every per-kind latency histogram into one for the headline
  // percentiles (identical bucket bounds, so counts add bucket-wise).
  crimson::obs::HistogramSnapshot all;
  for (const auto& [key, h] : m.histograms) {
    if (key.rfind("query.", 0) != 0 ||
        key.size() < 11 || key.compare(key.size() - 11, 11, ".latency_us") != 0) {
      continue;
    }
    if (all.bounds.empty()) {
      all.bounds = h.bounds;
      all.counts.assign(h.counts.size(), 0);
    }
    if (h.bounds == all.bounds) {
      for (size_t i = 0; i < h.counts.size(); ++i) all.counts[i] += h.counts[i];
      all.count += h.count;
      all.sum += h.sum;
    }
  }
  char line[512];
  snprintf(line, sizeof(line),
           "metrics: queries=%llu p50=%.0fus p99=%.0fus slow=%llu "
           "cache=%llu/%llu hit/miss pool=%llu/%llu hit/miss "
           "wal_appends=%llu net_frames=%llu net_rejects=%llu",
           static_cast<unsigned long long>(queries), all.p50(), all.p99(),
           static_cast<unsigned long long>(m.counter("query.slow")),
           static_cast<unsigned long long>(m.counter("cache.hits")),
           static_cast<unsigned long long>(m.counter("cache.misses")),
           static_cast<unsigned long long>(m.counter("storage.pool.hits")),
           static_cast<unsigned long long>(m.counter("storage.pool.misses")),
           static_cast<unsigned long long>(m.counter("storage.wal.appends")),
           static_cast<unsigned long long>(m.counter("net.frames_received")),
           static_cast<unsigned long long>(
               m.counter("net.queries_rejected") +
               m.counter("net.connections_rejected")));
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  using crimson::Crimson;
  using crimson::CrimsonOptions;
  using crimson::Durability;
  using crimson::SessionService;
  using crimson::net::CrimsonServer;
  using crimson::net::ServerOptions;

  CrimsonOptions session_opts;
  ServerOptions server_opts;
  server_opts.port = 9917;
  int metrics_dump_secs = 0;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--db=", 5) == 0) {
      session_opts.db_path = argv[i] + 5;
    } else if (strncmp(argv[i], "--host=", 7) == 0) {
      server_opts.host = argv[i] + 7;
    } else if (strncmp(argv[i], "--port=", 7) == 0) {
      server_opts.port = static_cast<uint16_t>(atoi(argv[i] + 7));
    } else if (strncmp(argv[i], "--workers=", 10) == 0) {
      server_opts.max_exec_concurrency = static_cast<size_t>(
          atoi(argv[i] + 10));
      session_opts.batch_workers = server_opts.max_exec_concurrency;
    } else if (strncmp(argv[i], "--max-connections=", 18) == 0) {
      server_opts.max_connections = static_cast<size_t>(atoi(argv[i] + 18));
    } else if (strncmp(argv[i], "--max-inflight=", 15) == 0) {
      server_opts.max_inflight_queries =
          static_cast<size_t>(atoi(argv[i] + 15));
    } else if (strcmp(argv[i], "--durability=commit") == 0) {
      session_opts.durability = Durability::kCommit;
    } else if (strcmp(argv[i], "--durability=group") == 0) {
      session_opts.durability = Durability::kGroupCommit;
    } else if (strcmp(argv[i], "--durability=off") == 0) {
      session_opts.durability = Durability::kOff;
    } else if (strncmp(argv[i], "--log-level=", 12) == 0) {
      crimson::LogLevel level;
      if (!crimson::ParseLogLevel(argv[i] + 12, &level)) {
        fprintf(stderr, "bad --log-level (want debug|info|warning|error)\n");
        return 2;
      }
      crimson::SetMinLogLevel(level);
    } else if (strncmp(argv[i], "--metrics-dump-secs=", 20) == 0) {
      metrics_dump_secs = atoi(argv[i] + 20);
    } else if (strncmp(argv[i], "--slow-query-micros=", 20) == 0) {
      session_opts.slow_query_micros =
          static_cast<uint64_t>(atoll(argv[i] + 20));
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  auto session_or = Crimson::Open(session_opts);
  if (!session_or.ok()) {
    fprintf(stderr, "failed to open session: %s\n",
            session_or.status().ToString().c_str());
    return 1;
  }
  auto session = std::move(session_or).value();
  SessionService service(session.get());

  auto server_or = CrimsonServer::Start(&service, server_opts);
  if (!server_or.ok()) {
    fprintf(stderr, "failed to start server: %s\n",
            server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_or).value();

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  printf("crimson_server listening on %s:%u (db=%s)\n",
         server_opts.host.c_str(), server->port(),
         session_opts.db_path.empty() ? "<memory>"
                                      : session_opts.db_path.c_str());
  fflush(stdout);

  int ticks_since_dump = 0;
  const int dump_every_ticks = metrics_dump_secs * 10;  // 100ms ticks
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (dump_every_ticks > 0 && ++ticks_since_dump >= dump_every_ticks) {
      ticks_since_dump = 0;
      CRIMSON_LOG(kInfo) << MetricsDumpLine(session->SnapshotMetrics());
    }
  }

  printf("signal received; draining...\n");
  fflush(stdout);
  crimson::Status drained = server->Shutdown();
  auto stats = server->stats();
  printf("drained: %llu connections served, %llu queries "
         "(%llu rejected), checkpoint %s\n",
         static_cast<unsigned long long>(stats.connections_accepted),
         static_cast<unsigned long long>(stats.queries_executed),
         static_cast<unsigned long long>(stats.queries_rejected_unavailable),
         drained.ok() ? "ok" : drained.ToString().c_str());
  // The service outlives the server, so the session's counters are
  // still live here: one line of cache + MVCC telemetry for operators
  // tailing the log.
  crimson::SessionStats session_stats = service.Stats();
  printf("cache: %llu hits / %llu misses (%llu entries, %llu bytes), "
         "%llu invalidations; crack: %llu/%llu sequences loaded across "
         "%llu stores; mvcc: epoch %llu, %llu live versions\n",
         static_cast<unsigned long long>(session_stats.cache.hits),
         static_cast<unsigned long long>(session_stats.cache.misses),
         static_cast<unsigned long long>(session_stats.cache.entries),
         static_cast<unsigned long long>(session_stats.cache.bytes_used),
         static_cast<unsigned long long>(session_stats.cache.invalidations),
         static_cast<unsigned long long>(
             session_stats.cache.crack_sequences_loaded),
         static_cast<unsigned long long>(
             session_stats.cache.crack_sequences_total),
         static_cast<unsigned long long>(session_stats.cache.crack_stores),
         static_cast<unsigned long long>(session_stats.pages.committed_epoch),
         static_cast<unsigned long long>(session_stats.pages.live_versions));
  fflush(stdout);
  return drained.ok() ? 0 : 1;
}
