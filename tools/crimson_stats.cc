// crimson_stats: fetches and pretty-prints a running crimson_server's
// metrics snapshot over the wire (the kStats frame).
//
//   crimson_stats --port=9917 [--host=127.0.0.1]
//
// Output: one "snapshot: N counters, M histograms" header (scripts
// assert on it), then every counter as "name value" sorted by name,
// then every histogram as one line with count / mean / p50 / p95 /
// p99. Exit 0 on success, 1 on any connection or protocol error.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/client.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  crimson::net::ClientOptions options;
  options.port = 9917;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--host=", 7) == 0) {
      options.host = argv[i] + 7;
    } else if (strncmp(argv[i], "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(atoi(argv[i] + 7));
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      fprintf(stderr, "usage: crimson_stats --port=9917 [--host=...]\n");
      return 2;
    }
  }

  auto client_or = crimson::net::CrimsonClient::Connect(options);
  if (!client_or.ok()) {
    fprintf(stderr, "connect failed: %s\n",
            client_or.status().ToString().c_str());
    return 1;
  }
  auto metrics_or = (*client_or)->ServerMetrics();
  if (!metrics_or.ok()) {
    fprintf(stderr, "stats fetch failed: %s\n",
            metrics_or.status().ToString().c_str());
    return 1;
  }
  const crimson::obs::MetricsSnapshot& m = *metrics_or;

  printf("snapshot: %zu counters, %zu histograms\n", m.counters.size(),
         m.histograms.size());
  printf("\ncounters:\n");
  for (const auto& [name, value] : m.counters) {
    printf("  %-40s %llu\n", name.c_str(),
           static_cast<unsigned long long>(value));
  }
  printf("\nhistograms:\n");
  for (const auto& [name, h] : m.histograms) {
    printf("  %-40s count=%llu mean=%.1f p50=%.0f p95=%.0f p99=%.0f\n",
           name.c_str(), static_cast<unsigned long long>(h.count), h.mean(),
           h.p50(), h.p95(), h.p99());
  }
  return 0;
}
